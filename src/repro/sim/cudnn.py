"""cuDNN-like convolution/pooling/softmax library.

Reproduces the cuDNN behaviours the paper's analyses hinge on:

* **Algorithm selection heuristics** (Sec. III-D3): the convolution API
  chooses IMPLICIT_GEMM for batch sizes below 16 (invoking
  ``cudnn::detail::implicit_convolve_sgemm``) and IMPLICIT_PRECOMP_GEMM
  for larger batches (invoking ``{arch}_scudnn_128x{tile}_relu_interior_nn_v1``);
  late-stage 3x3 convolutions with many channels dispatch to a transformed
  complex-GEMM path (``volta_cgemm_32x32_tn``) on Volta/Turing.
* **Architecture-specific kernels** (Sec. IV-C): Volta and Turing systems
  invoke ``volta_scudnn_*`` kernels while Pascal/Maxwell invoke
  ``maxwell_scudnn_*`` ones.
* **Layout helper kernels**: convolutions reading raw image input emit
  ``ShuffleTensor`` / ``OffsetComp`` helpers first, so the first Conv layer
  of ResNet50 produces exactly the 3 kernels shown in the paper's Fig. 1.

DRAM traffic factors are *effective* traffic after L2 filtering, calibrated
against Tables III/IV/VI (see inline notes); the batch-dependent cache
curve reproduces Table VI's arithmetic-intensity dip that makes
MLPerf_ResNet50_v1.5 memory-bound at batch sizes 16 and 32 (Fig. 10).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.sim.hardware import Architecture, GPUSpec
from repro.sim.kernels import KernelClass, KernelSpec

_F32 = 4  # bytes per element; the paper's models run single-precision


class ConvAlgorithm(enum.Enum):
    """Convolution algorithms mirroring cudnnConvolutionFwdAlgo_t."""

    IMPLICIT_GEMM = "implicit_gemm"
    IMPLICIT_PRECOMP_GEMM = "implicit_precomp_gemm"
    CGEMM = "cgemm"
    DEPTHWISE = "depthwise"


@dataclass(frozen=True)
class ConvGeometry:
    """Shape of one convolution (cudnnConvolutionDescriptor analog)."""

    batch: int
    in_channels: int
    in_h: int
    in_w: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride_h: int = 1
    stride_w: int = 1
    pad_h: int = 0
    pad_w: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        if self.batch < 1 or self.in_channels < 1 or self.out_channels < 1:
            raise ValueError(f"invalid conv geometry: {self}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"channels ({self.in_channels}->{self.out_channels}) not "
                f"divisible by groups ({self.groups})"
            )

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.pad_h - self.kernel_h) // self.stride_h + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.pad_w - self.kernel_w) // self.stride_w + 1

    @property
    def is_depthwise(self) -> bool:
        return self.groups == self.in_channels and self.groups > 1

    @property
    def input_bytes(self) -> float:
        return self.batch * self.in_channels * self.in_h * self.in_w * _F32

    @property
    def weight_bytes(self) -> float:
        return (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.kernel_h
            * self.kernel_w
            * _F32
        )

    @property
    def output_bytes(self) -> float:
        return self.batch * self.out_channels * self.out_h * self.out_w * _F32

    @property
    def direct_flops(self) -> float:
        """2 * N * C_out * P * Q * (C_in/g * Kh * Kw) multiply-accumulates."""
        return (
            2.0
            * self.batch
            * self.out_channels
            * self.out_h
            * self.out_w
            * (self.in_channels // self.groups)
            * self.kernel_h
            * self.kernel_w
        )


def select_convolution_algorithm(geom: ConvGeometry, gpu: GPUSpec) -> ConvAlgorithm:
    """cuDNN's heuristic algorithm choice (paper Sec. III-D3 and IV-C).

    The heuristics depend on the layer input parameters, batch size and
    architecture — which is why the kernels invoked for convolution layers
    vary across batch sizes and systems.
    """
    if geom.is_depthwise:
        return ConvAlgorithm.DEPTHWISE
    if geom.batch < 16:
        return ConvAlgorithm.IMPLICIT_GEMM
    if (
        geom.kernel_h == 3
        and geom.kernel_w == 3
        and geom.out_channels >= 512
        and geom.out_h <= 7
        and geom.batch >= 128
        and gpu.architecture in (Architecture.VOLTA, Architecture.TURING)
    ):
        return ConvAlgorithm.CGEMM
    return ConvAlgorithm.IMPLICIT_PRECOMP_GEMM


def _precomp_tile(geom: ConvGeometry) -> int:
    """scudnn tile width.

    The 128x128 variant is chosen only for very channel-heavy reduce
    convolutions late in the network (paper Table IV: 4 calls of
    volta_scudnn_128x128 vs 34 calls of the 128x64 variant in ResNet50).
    """
    if geom.in_channels >= 1024 and geom.out_h <= 7:
        return 128
    return 64


def _cache_curve(batch: int, *, amplitude: float = 6.5, floor: float = 1.2) -> float:
    """Effective read-traffic multiplier for precomp GEMM vs batch size.

    Calibrated against Table VI's arithmetic-intensity column: per-image
    DRAM traffic peaks at batch 16-32 (the algorithm-switch region where
    the precomp kernel has "relatively low arithmetic intensity" — the
    paper's Fig. 10 memory-bound dip) and drops by ~4x at batch 256 as
    weight/activation reuse in L2 improves.  With these constants the
    reproduced MLPerf_ResNet50_v1.5 is memory-bound at exactly batch
    sizes 16 and 32 on Tesla_V100 and compute-bound everywhere else.
    """
    x = math.log2(max(1, batch))
    return floor + amplitude * math.exp(-((x - 4.5) ** 2) / 4.0)


def convolution_forward_kernels(
    geom: ConvGeometry, gpu: GPUSpec, *, fused_relu: bool = False
) -> list[KernelSpec]:
    """Kernels emitted by one cudnnConvolutionForward call."""
    algo = select_convolution_algorithm(geom, gpu)
    prefix = gpu.architecture.kernel_prefix
    kernels: list[KernelSpec] = []

    # Raw-image inputs need an NHWC->NCHW-ish layout shuffle plus an offset
    # table; this is what makes the paper's first Conv layer emit 3 kernels.
    if geom.in_channels <= 4 and not geom.is_depthwise:
        kernels.append(
            KernelSpec(
                name="ShuffleTensor",
                klass=KernelClass.MEMORY_MOVEMENT,
                flops=0.0,
                dram_read_bytes=0.5 * geom.input_bytes,
                dram_write_bytes=0.5 * geom.input_bytes,
                blocks=max(1, int(geom.input_bytes / _F32 / 512)),
                threads_per_block=512,
                tags={"library": "cudnn", "role": "layout"},
            )
        )
        kernels.append(
            KernelSpec(
                name="OffsetComp",
                klass=KernelClass.MEMORY_MOVEMENT,
                flops=1024.0,
                dram_read_bytes=4096.0,
                dram_write_bytes=4096.0,
                blocks=1,
                threads_per_block=128,
                tags={"library": "cudnn", "role": "offsets"},
            )
        )

    if algo is ConvAlgorithm.DEPTHWISE:
        kernels.append(depthwise_forward_kernel(geom))
    elif algo is ConvAlgorithm.IMPLICIT_GEMM:
        kernels.append(_implicit_gemm_kernel(geom))
    elif algo is ConvAlgorithm.CGEMM:
        kernels.extend(_cgemm_kernels(geom, prefix))
    else:
        kernels.append(_precomp_kernel(geom, prefix, fused_relu=fused_relu))
    return [k.with_tags(conv_algorithm=algo.value) for k in kernels]


def depthwise_forward_kernel(
    geom: ConvGeometry,
    *,
    name: str = "cudnn::detail::depthwise_fprop_kernel",
    traffic_scale: float = 1.0,
    library: str = "cudnn",
) -> KernelSpec:
    """Depthwise convolution kernel.

    Depthwise convs have near-zero data reuse: traffic ~= tensors streamed.
    ``traffic_scale`` captures implementation quality — TensorFlow's
    depthwise kernel moves >2x the tensor bytes (im2col-style staging),
    which is what gives MXNet MobileNets their 35-74% throughput edge at
    optimal batch sizes (paper Sec. IV-B: MXNet MobileNets have "fewer
    memory accesses" despite identical math).
    """
    elems = geom.batch * geom.out_channels * geom.out_h * geom.out_w
    return KernelSpec(
        name=name,
        klass=KernelClass.CONV_DEPTHWISE,
        flops=geom.direct_flops,
        dram_read_bytes=traffic_scale * (0.95 * geom.input_bytes) + geom.weight_bytes,
        dram_write_bytes=traffic_scale * 0.95 * geom.output_bytes,
        blocks=max(1, elems // 256),
        threads_per_block=256,
        tags={"library": library},
    )


def _implicit_gemm_kernel(geom: ConvGeometry) -> KernelSpec:
    # No precomputed-index reads and the working set largely fits in L2 at
    # small batch -> low traffic, high arithmetic intensity (Table VI rows
    # 1-8 are compute-bound).
    tiles_m = max(1, math.ceil(geom.batch * geom.out_h * geom.out_w / 128))
    tiles_n = max(1, math.ceil(geom.out_channels / 64))
    return KernelSpec(
        name="cudnn::detail::implicit_convolve_sgemm",
        klass=KernelClass.CONV_IMPLICIT_GEMM,
        flops=geom.direct_flops,
        dram_read_bytes=1.3 * (0.55 * geom.input_bytes + 1.0 * geom.weight_bytes),
        dram_write_bytes=1.3 * 0.55 * geom.output_bytes,
        blocks=tiles_m * tiles_n,
        threads_per_block=256,
        tags={"library": "cudnn"},
    )


def _precomp_kernel(
    geom: ConvGeometry, prefix: str, *, fused_relu: bool
) -> KernelSpec:
    tile = _precomp_tile(geom)
    tiles_m = max(1, math.ceil(geom.batch * geom.out_h * geom.out_w / 128))
    tiles_n = max(1, math.ceil(geom.out_channels / tile))
    g = _cache_curve(geom.batch)
    g_w = _cache_curve(geom.batch, amplitude=5.0, floor=1.0)
    # cuDNN ships interior/small template instantiations per tile regime.
    region = "interior" if geom.out_h >= 10 else "small"
    variant = (f"relu_{region}_nn_v1" if fused_relu
               else f"{region}_nn_v1")
    # Narrow GEMMs over giant spatial extents (VGG-style 224x224/112x112
    # stages with few output-channel tiles) cannot reuse the B operand and
    # run well below peak.  Image-input convolutions are exempt: cuDNN
    # ships specialized first-layer kernels (the paper's Table III shows
    # ResNet's first conv at 12.81 Tflops/s).
    if tiles_n <= 2 and geom.out_h >= 100 and geom.in_channels > 4:
        eff_scale = 0.65
    else:
        eff_scale = 1.0
    return KernelSpec(
        name=f"{prefix}_scudnn_128x{tile}_{variant}",
        klass=KernelClass.CONV_PRECOMP_GEMM,
        flops=geom.direct_flops,
        dram_read_bytes=g * (0.55 * geom.input_bytes + 1.3 * geom.weight_bytes),
        dram_write_bytes=g_w * 0.55 * geom.output_bytes,
        blocks=tiles_m * tiles_n,
        threads_per_block=256,
        eff_scale=eff_scale,
        tags={"library": "cudnn", "tile": tile},
    )


def _cgemm_kernels(geom: ConvGeometry, prefix: str) -> list[KernelSpec]:
    # Transformed convolution: a flip/transform pass plus a complex GEMM.
    # Table III: 77.42 Gflops for a 59.2 Gflop direct conv -> ~1.31x flop
    # inflation; traffic stays near tensor sizes -> very high AI (~877).
    tiles_m = max(1, math.ceil(geom.batch * geom.out_h * geom.out_w / 32))
    tiles_n = max(1, math.ceil(geom.out_channels / 32))
    transform = KernelSpec(
        name="flip_filter",
        klass=KernelClass.MEMORY_MOVEMENT,
        flops=0.0,
        dram_read_bytes=geom.weight_bytes,
        dram_write_bytes=geom.weight_bytes,
        blocks=max(1, int(geom.weight_bytes / _F32 / 256)),
        threads_per_block=256,
        tags={"library": "cudnn", "role": "transform"},
    )
    main = KernelSpec(
        name=f"{prefix}_cgemm_32x32_tn",
        klass=KernelClass.CONV_CGEMM,
        flops=1.31 * geom.direct_flops,
        dram_read_bytes=1.15 * (geom.input_bytes + geom.weight_bytes),
        dram_write_bytes=1.7 * geom.output_bytes,
        blocks=tiles_m * tiles_n,
        threads_per_block=256,
        tags={"library": "cudnn"},
    )
    return [transform, main]


# -- non-convolution primitives -------------------------------------------------


def pooling_forward_kernel(
    batch: int,
    channels: int,
    out_h: int,
    out_w: int,
    window: int,
    *,
    in_h: int,
    in_w: int,
) -> KernelSpec:
    """cudnnPoolingForward: one windowed-reduction kernel."""
    out_elems = batch * channels * out_h * out_w
    in_bytes = batch * channels * in_h * in_w * _F32
    return KernelSpec(
        name="cudnn::detail::pooling_fw_4d_kernel",
        klass=KernelClass.POOL,
        flops=float(out_elems * window * window),
        dram_read_bytes=0.8 * in_bytes,
        dram_write_bytes=0.9 * out_elems * _F32,
        blocks=max(1, out_elems // 256),
        threads_per_block=256,
        tags={"library": "cudnn"},
    )


def softmax_forward_kernel(batch: int, classes: int) -> KernelSpec:
    """cudnnSoftmaxForward: fused reduce + normalize."""
    elems = batch * classes
    return KernelSpec(
        name="cudnn::detail::softmax_fw_kernel",
        klass=KernelClass.REDUCTION,
        # exp + subtract-max + divide: ~4 ops/element, plus the reductions.
        flops=float(6 * elems),
        dram_read_bytes=1.0 * elems * _F32,
        dram_write_bytes=1.0 * elems * _F32,
        blocks=max(1, batch),
        threads_per_block=min(1024, max(32, classes)),
        tags={"library": "cudnn"},
    )
