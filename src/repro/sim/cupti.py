"""CUPTI-like profiling interface.

NVIDIA's CUPTI exposes three capture mechanisms, all reproduced here
against the simulated runtime (paper Sec. III-B):

* **Callback API** — intercepts CUDA API calls; XSP uses it to capture
  ``cudaLaunchKernel`` as the *launch span* of each kernel.
* **Activity API** — asynchronous records of device work (kernel
  executions, memory copies); XSP uses it for *execution spans*.
* **Metric API** — hardware counters (flop counts, DRAM traffic, achieved
  occupancy).  The GPU exposes a limited number of concurrent counters, so
  expensive metrics require the kernel to be *replayed* multiple times;
  this inflates the host-visible run time (the paper reports >100x
  slowdowns for memory metrics) while the reported kernel duration remains
  the clean single-pass one.

Enabling any capture adds per-kernel host overhead, which is exactly the
profiling overhead XSP's leveled experimentation quantifies (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.calibration import PROFILING_CALIBRATION, ProfilingCalibration
from repro.sim.cuda import CudaRuntime, KernelLaunchRecord, MemcpyRecord
from repro.sim.kernels import achieved_occupancy

#: Metrics XSP's analyses rely on (paper Sec. III-D3).
SUPPORTED_METRICS = (
    "flop_count_sp",
    "dram_read_bytes",
    "dram_write_bytes",
    "achieved_occupancy",
)


@dataclass(frozen=True)
class ApiRecord:
    """One intercepted CUDA API call (callback API)."""

    name: str
    correlation_id: int
    start_ns: int
    end_ns: int


@dataclass(frozen=True)
class ActivityRecord:
    """One device activity (activity API)."""

    kind: str  # "kernel" | "memcpy"
    name: str
    correlation_id: int
    stream_id: int
    start_ns: int
    end_ns: int
    grid: tuple[int, int, int]
    block: tuple[int, int, int]
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class Cupti:
    """Profiler attached to a :class:`CudaRuntime`.

    Capture domains are opt-in, mirroring how one specifies with nvprof or
    Nsight which CUDA APIs, activities, or metrics to record.
    """

    def __init__(
        self,
        runtime: CudaRuntime,
        calibration: ProfilingCalibration = PROFILING_CALIBRATION,
    ) -> None:
        self.runtime = runtime
        self.calibration = calibration
        self.api_records: list[ApiRecord] = []
        self.activity_records: list[ActivityRecord] = []
        self._callbacks_enabled = False
        self._activities_enabled = False
        self._metrics: tuple[str, ...] = ()
        runtime.on_launch(self._on_launch)
        runtime.on_memcpy(self._on_memcpy)

    # -- enable/disable -------------------------------------------------------
    def enable_callbacks(self) -> None:
        self._callbacks_enabled = True
        self._refresh_runtime_overheads()

    def enable_activities(self) -> None:
        self._activities_enabled = True
        self._refresh_runtime_overheads()

    def enable_metrics(self, metrics: Iterable[str]) -> None:
        metrics = tuple(metrics)
        unknown = [m for m in metrics if m not in SUPPORTED_METRICS]
        if unknown:
            raise ValueError(
                f"unsupported GPU metrics {unknown}; supported: {SUPPORTED_METRICS}"
            )
        self._metrics = metrics
        self._refresh_runtime_overheads()

    def disable(self) -> None:
        """Turn off all capture domains and remove runtime overheads."""
        self._callbacks_enabled = False
        self._activities_enabled = False
        self._metrics = ()
        self._refresh_runtime_overheads()

    @property
    def enabled(self) -> bool:
        return self._callbacks_enabled or self._activities_enabled or bool(self._metrics)

    @property
    def metrics_enabled(self) -> tuple[str, ...]:
        return self._metrics

    def replay_passes(self) -> int:
        """Total kernel replay passes implied by the enabled metrics.

        Counters are scheduled greedily into hardware counter slots; each
        metric contributes its pass count (``calibration.passes_for``), and
        at least one pass always runs (the real execution).
        """
        if not self._metrics:
            return 1
        return max(1, sum(self.calibration.passes_for(m) for m in self._metrics))

    def _refresh_runtime_overheads(self) -> None:
        per_kernel_ns = 0
        if self._callbacks_enabled:
            per_kernel_ns += int(self.calibration.cupti_kernel_us * 500)
        if self._activities_enabled:
            per_kernel_ns += int(self.calibration.cupti_kernel_us * 500)
        self.runtime.profiler_launch_overhead_ns = per_kernel_ns
        self.runtime.profiler_replay_passes = self.replay_passes()
        self.runtime.profiler_pass_overhead_ns = int(
            self.calibration.metric_pass_us * 1e3
        )

    # -- capture ---------------------------------------------------------------
    def _on_launch(self, record: KernelLaunchRecord) -> None:
        if self._callbacks_enabled:
            self.api_records.append(
                ApiRecord(
                    name="cudaLaunchKernel",
                    correlation_id=record.correlation_id,
                    start_ns=record.api_start_ns,
                    end_ns=record.api_end_ns,
                )
            )
        if self._activities_enabled:
            metrics: dict[str, float] = {}
            for m in self._metrics:
                metrics[m] = self._metric_value(record, m)
            self.activity_records.append(
                ActivityRecord(
                    kind="kernel",
                    name=record.spec.name,
                    correlation_id=record.correlation_id,
                    stream_id=record.stream_id,
                    start_ns=record.device_start_ns,
                    end_ns=record.device_end_ns,
                    grid=record.spec.grid,
                    block=record.spec.block,
                    metrics=metrics,
                )
            )

    def _on_memcpy(self, record: MemcpyRecord) -> None:
        """Memory copies are device activities too (CUPTI_ACTIVITY_KIND_MEMCPY)."""
        if not self._activities_enabled:
            return
        self.activity_records.append(
            ActivityRecord(
                kind="memcpy",
                name=f"[CUDA memcpy {record.kind.upper()}]",
                correlation_id=record.correlation_id,
                stream_id=0,
                start_ns=record.start_ns,
                end_ns=record.end_ns,
                grid=(1, 1, 1),
                block=(1, 1, 1),
                metrics={"bytes": float(record.nbytes)},
            )
        )

    def _metric_value(self, record: KernelLaunchRecord, metric: str) -> float:
        spec = record.spec
        if metric == "flop_count_sp":
            return float(spec.flops)
        if metric == "dram_read_bytes":
            return float(spec.dram_read_bytes)
        if metric == "dram_write_bytes":
            return float(spec.dram_write_bytes)
        if metric == "achieved_occupancy":
            return achieved_occupancy(spec, self.runtime.gpu)
        raise ValueError(f"unsupported metric {metric!r}")

    # -- retrieval ----------------------------------------------------------------
    def flush(self) -> tuple[list[ApiRecord], list[ActivityRecord]]:
        """Return and clear all captured records."""
        api, self.api_records = self.api_records, []
        act, self.activity_records = self.activity_records, []
        return api, act
