"""Framework-agnostic tensor-manipulation kernels.

Data-movement and miscellaneous ops (concat, transpose, pad, resize, LRN,
``Where``) that both framework simulators dispatch to generic device
kernels.  ``Where`` deserves note: the paper finds object-detection models
are *dominated* by Where layers (Sec. IV-A) — tensor reshaping with respect
to a user-defined operator that involves host round-trips, so the op's cost
is mostly non-GPU; the kernel here is deliberately small and serialized.
"""

from __future__ import annotations

from repro.sim.kernels import KernelClass, KernelSpec

_F32 = 4


def concat_kernel(total_elems: int, n_inputs: int) -> KernelSpec:
    """Channel concatenation: pure data movement."""
    nbytes = total_elems * _F32
    return KernelSpec(
        name="concat_variadic_kernel",
        klass=KernelClass.MEMORY_MOVEMENT,
        flops=0.0,
        dram_read_bytes=0.6 * nbytes,
        dram_write_bytes=0.6 * nbytes,
        blocks=max(1, total_elems // 512),
        threads_per_block=512,
        tags={"n_inputs": n_inputs},
    )


def transpose_kernel(elems: int) -> KernelSpec:
    """Layout permutation; strided access halves effective bandwidth."""
    nbytes = elems * _F32
    return KernelSpec(
        name="transpose_tilemap_kernel",
        klass=KernelClass.MEMORY_MOVEMENT,
        flops=0.0,
        dram_read_bytes=1.0 * nbytes,
        dram_write_bytes=1.0 * nbytes,
        blocks=max(1, elems // 256),
        threads_per_block=256,
    )


def pad_kernel(out_elems: int) -> KernelSpec:
    nbytes = out_elems * _F32
    return KernelSpec(
        name="pad_constant_kernel",
        klass=KernelClass.MEMORY_MOVEMENT,
        flops=0.0,
        dram_read_bytes=0.8 * nbytes,
        dram_write_bytes=0.9 * nbytes,
        blocks=max(1, out_elems // 512),
        threads_per_block=512,
    )


def resize_bilinear_kernel(out_elems: int, in_elems: int) -> KernelSpec:
    """Bilinear upsample (DeepLab decoders, SRGAN upscaling)."""
    return KernelSpec(
        name="resize_bilinear_kernel",
        klass=KernelClass.MEMORY_MOVEMENT,
        flops=6.0 * out_elems,  # 4-tap interpolation
        dram_read_bytes=0.9 * in_elems * _F32,
        dram_write_bytes=0.9 * out_elems * _F32,
        blocks=max(1, out_elems // 256),
        threads_per_block=256,
    )


def lrn_kernel(elems: int, depth_radius: int = 5) -> KernelSpec:
    """Local response normalization (AlexNet / GoogLeNet era)."""
    return KernelSpec(
        name="lrn_cross_channel_kernel",
        klass=KernelClass.REDUCTION,
        flops=float(elems * (2 * depth_radius + 3)),
        dram_read_bytes=1.2 * elems * _F32,
        dram_write_bytes=1.0 * elems * _F32,
        blocks=max(1, elems // 256),
        threads_per_block=256,
    )


def where_kernels(elems: int) -> list[KernelSpec]:
    """`Where` op: a scan/compaction pair with poor GPU utilization.

    Object-detection graphs call this repeatedly for box filtering; each
    call moves little data, launches few blocks, and forces host syncs —
    hence the op's latency is dominated by non-GPU time (paper Sec. IV-A).
    """
    nbytes = elems * _F32
    scan = KernelSpec(
        name="where_index_scan_kernel",
        klass=KernelClass.WHERE_OP,
        flops=float(elems),
        dram_read_bytes=0.9 * nbytes,
        dram_write_bytes=0.3 * nbytes,
        blocks=max(1, elems // 1024),
        threads_per_block=1024,
    )
    gather = KernelSpec(
        name="where_gather_kernel",
        klass=KernelClass.WHERE_OP,
        flops=0.0,
        dram_read_bytes=0.6 * nbytes,
        dram_write_bytes=0.6 * nbytes,
        blocks=max(1, elems // 1024),
        threads_per_block=1024,
    )
    return [scan, gather]


def mean_reduce_kernel(in_elems: int, out_elems: int) -> KernelSpec:
    """Global average pool / Mean reduction."""
    return KernelSpec(
        name="reduce_mean_columns_kernel",
        klass=KernelClass.REDUCTION,
        flops=float(in_elems),
        dram_read_bytes=1.0 * in_elems * _F32,
        dram_write_bytes=1.0 * out_elems * _F32,
        blocks=max(1, in_elems // 1024),
        threads_per_block=1024,
    )
