"""Measurement campaigns: Sec. IV-scale orchestration.

The paper's evaluation profiles 65 models x 5 systems x 2 frameworks.  A
:class:`Campaign` declares a grid of (model, system, framework, batch)
points, runs the pipeline over all of them with shared caching, and
produces combined comparison tables — the programmatic version of the
paper's Tables VIII-X workflow.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.compare import comparison_table
from repro.analysis.tables import Table
from repro.core import AnalysisPipeline, ProfileStore, XSPSession
from repro.core.pipeline import ModelProfile
from repro.models import get_model
from repro.sim.memory import OutOfDeviceMemoryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diff.campaign import CampaignDiff
    from repro.insights.campaign import CampaignInsights


@dataclass(frozen=True)
class CampaignPoint:
    """One configuration to profile."""

    model: int | str
    batch: int
    system: str = "Tesla_V100"
    framework: str = "tensorflow_like"

    @property
    def label(self) -> str:
        model_name = get_model(self.model).name
        return f"{model_name}|{self.framework}|{self.system}|bs{self.batch}"


@dataclass
class CampaignResult:
    """Profiles per point, plus any configurations that did not fit."""

    profiles: dict[CampaignPoint, ModelProfile] = field(default_factory=dict)
    out_of_memory: list[CampaignPoint] = field(default_factory=list)

    def table(self, *, title: str = "Campaign results") -> Table:
        return comparison_table(
            {point.label: profile for point, profile in self.profiles.items()},
            title=title,
        )

    def __len__(self) -> int:
        return len(self.profiles)

    def diff(self, other: "CampaignResult") -> "CampaignDiff":
        """Grid-vs-grid A/B: ``self`` is the baseline, ``other`` the candidate.

        Points are matched on their (model, system, framework, batch)
        coordinates minus the comparison axis (a field constant within
        each grid but different between them — e.g. framework vs
        framework — is dropped from the key and reported as the axis).
        OOM set differences are part of the result: a point that fits in
        one grid but not the other is itself a finding.
        """
        from repro.analysis.diff.campaign import diff_campaigns

        return diff_campaigns(
            self.profiles,
            other.profiles,
            baseline_oom=self.out_of_memory,
            candidate_oom=other.out_of_memory,
        )

    def insights(self, *, severity_cutoff: float = 0.30) -> "CampaignInsights":
        """Roll the insight rules up across every profiled point.

        Systemic findings ("hotspot kernel X dominates in 12/20 configs")
        come from :func:`repro.insights.campaign.aggregate_insights`.
        """
        from repro.insights.campaign import aggregate_insights

        return aggregate_insights(
            self.profiles,
            severity_cutoff=severity_cutoff,
            out_of_memory=self.out_of_memory,
        )


class Campaign:
    """Runs a grid of profiling points with per-(system, framework) reuse.

    ``store`` (a :class:`~repro.core.cache.ProfileStore` or a directory
    path) gives the grid cross-*process* reuse as well: every pipeline
    the campaign builds consults the on-disk store before re-running the
    leveled experiment ladder, so a warm re-run of the same grid does no
    profiling work at all.
    """

    def __init__(
        self,
        *,
        runs_per_level: int = 1,
        store: "ProfileStore | str | os.PathLike[str] | None" = None,
    ) -> None:
        self.runs_per_level = runs_per_level
        self.store = (
            ProfileStore(store)
            if isinstance(store, (str, os.PathLike))
            else store
        )
        self._pipelines: dict[tuple[str, str], AnalysisPipeline] = {}
        self.points: list[CampaignPoint] = []

    # -- declaration --------------------------------------------------------
    def add(self, point: CampaignPoint) -> "Campaign":
        self.points.append(point)
        return self

    def add_grid(
        self,
        models: Iterable[int | str],
        batches: Iterable[int],
        systems: Iterable[str] = ("Tesla_V100",),
        frameworks: Iterable[str] = ("tensorflow_like",),
    ) -> "Campaign":
        for model in models:
            for system in systems:
                for framework in frameworks:
                    for batch in batches:
                        self.add(CampaignPoint(model, batch, system, framework))
        return self

    def __iter__(self) -> Iterator[CampaignPoint]:
        return iter(self.points)

    # -- execution -------------------------------------------------------------
    def _pipeline(self, system: str, framework: str) -> AnalysisPipeline:
        key = (system, framework)
        if key not in self._pipelines:
            self._pipelines[key] = AnalysisPipeline(
                XSPSession(system, framework),
                runs_per_level=self.runs_per_level,
                store=self.store,
            )
        return self._pipelines[key]

    def run(self) -> CampaignResult:
        """Profile every declared point; OOM points are recorded, not fatal."""
        if not self.points:
            raise ValueError("campaign has no points; call add()/add_grid()")
        result = CampaignResult()
        for point in self.points:
            pipeline = self._pipeline(point.system, point.framework)
            graph = get_model(point.model).graph
            try:
                result.profiles[point] = pipeline.profile_model(
                    graph, point.batch
                )
            except OutOfDeviceMemoryError:
                result.out_of_memory.append(point)
        return result
