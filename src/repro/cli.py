"""Command-line interface.

    python -m repro list-models [--task IC]
    python -m repro profile --model 7 --batch 256 [--system S] [--framework F]
    python -m repro sweep --model 7 --batches 1,8,64,256
    python -m repro experiments [--only fig10,table06] [--output EXPERIMENTS.md]
    python -m repro trace --model 7 --batch 16 --output trace.json [--chrome [out.json]]
    python -m repro advise --model 7 --batch 256 [--json]
    python -m repro diff model=7,batch=256 model=7,batch=256,framework=mxnet_like
    python -m repro diff old_profile.json new_trace.json --max-regression 0.10

Everything runs on the simulated substrate in deterministic virtual time.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.report import full_report
from repro.core import (
    AnalysisPipeline,
    MLLibG,
    ProfileStore,
    ProfilingConfig,
    XSPSession,
)
from repro.models import get_model, list_models
from repro.sim.hardware import SYSTEMS
from repro.tracing.export import save_trace
from repro.workloads import throughput_curve


def _model_key(value: str) -> int | str:
    return int(value) if value.isdigit() else value


def _add_target_args(
    parser: argparse.ArgumentParser, *, model_required: bool = True
) -> None:
    parser.add_argument("--model", required=model_required, type=_model_key,
                        default=None, help="paper model ID (1-55) or name")
    parser.add_argument("--system", default="Tesla_V100",
                        choices=sorted(SYSTEMS))
    parser.add_argument("--framework", default="tensorflow_like",
                        choices=["tensorflow_like", "mxnet_like"])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XSP reproduction: across-stack profiling of ML models "
        "on (simulated) GPUs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list-models", help="show the Table VIII zoo")
    list_p.add_argument("--task", choices=["IC", "OD", "IS", "SS", "SR"])

    prof_p = sub.add_parser("profile", help="full across-stack profile")
    _add_target_args(prof_p)
    prof_p.add_argument("--batch", type=int, default=1)
    prof_p.add_argument("--runs", type=int, default=3,
                        help="repetitions per profiling level")
    prof_p.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist merged profiles here and serve repeat "
                        "invocations from disk instead of re-profiling")

    sweep_p = sub.add_parser("sweep", help="A1 throughput curve")
    _add_target_args(sweep_p)
    sweep_p.add_argument("--batches", default="1,2,4,8,16,32,64,128,256",
                         help="comma-separated batch sizes")

    exp_p = sub.add_parser("experiments",
                           help="reproduce the paper's tables/figures")
    exp_p.add_argument("--only", default=None,
                       help="comma-separated experiment ids (e.g. fig10)")
    exp_p.add_argument("--output", default=None,
                       help="also write an EXPERIMENTS.md-style report here")

    trace_p = sub.add_parser("trace", help="capture and save a raw trace")
    _add_target_args(trace_p)
    trace_p.add_argument("--batch", type=int, default=1)
    trace_p.add_argument("--output", default=None,
                         help="write the lossless JSON trace here")
    trace_p.add_argument("--chrome", nargs="?", const="", default=None,
                         metavar="OUT",
                         help="write Chrome trace_event JSON (openable in "
                         "Perfetto / chrome://tracing) to OUT; without OUT, "
                         "--output receives the Chrome format instead")
    trace_p.add_argument("--library-level", action="store_true",
                         help="include cuDNN API-call spans (Sec. III-E)")
    trace_p.add_argument("--stats", action="store_true",
                         help="print span count, per-level/kind breakdown, "
                         "and the capture's estimated resident bytes")

    adv_p = sub.add_parser("advise",
                           help="rule-based across-stack bottleneck insights")
    _add_target_args(adv_p, model_required=False)
    adv_p.add_argument("--batch", type=int, default=1)
    adv_p.add_argument("--runs", type=int, default=1,
                       help="repetitions per profiling level")
    adv_p.add_argument("--sweep", default="auto", metavar="BATCHES",
                       help="comma-separated batch sizes for the "
                       "batch-scaling rules; 'auto' doubles from 1 past "
                       "--batch; 'none' skips the sweep")
    adv_p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the machine-checkable JSON report")
    adv_p.add_argument("--min-severity", type=float, default=0.0,
                       help="hide insights scoring below this (0-1)")
    adv_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="serve/persist the merged profile via this "
                       "on-disk store")
    adv_p.add_argument("--from-trace", default=None, metavar="TRACE_JSON",
                       help="run the rules over a saved `repro trace "
                       "--output` capture instead of re-profiling "
                       "(--model and the sweep are not needed)")
    adv_p.add_argument("--live", action="store_true",
                       help="stream insight updates while an "
                       "application-level capture of the model is in "
                       "flight (incremental engine; final report at the "
                       "end)")
    adv_p.add_argument("--evaluations", type=int, default=2,
                       help="evaluations in the --live application "
                       "capture (default 2)")

    diff_p = sub.add_parser(
        "diff",
        help="differential analysis: what changed between two profiles",
        description="Each side is either a saved JSON file (a profile-store "
        "entry, a bare profile, or a `repro trace --output` capture) or "
        "profile coordinates like model=7,batch=256[,system=S][,framework=F]"
        "[,runs=N]. Coordinates are served from --cache-dir when warm and "
        "profiled (then cached) otherwise.",
    )
    diff_p.add_argument("baseline", help="side A: JSON path or coordinates")
    diff_p.add_argument("candidate", help="side B: JSON path or coordinates")
    diff_p.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-checkable JSON diff")
    diff_p.add_argument("--min-severity", type=float, default=0.0,
                        help="hide findings scoring below this (0-1)")
    diff_p.add_argument("--max-regression", type=float, default=None,
                        metavar="FRACTION",
                        help="CI gate: exit 1 if the candidate's model "
                        "latency regresses by more than this fraction "
                        "(e.g. 0.10 = 10%%)")
    diff_p.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="profile store consulted (and filled) when a "
                        "side is given as coordinates")
    diff_p.add_argument("--runs", type=int, default=3,
                        help="repetitions per level when profiling a "
                        "coordinate side (default 3, matching `repro "
                        "profile` so --cache-dir entries are shared; "
                        "override per side with runs=N in the spec)")
    return parser


def cmd_list_models(args: argparse.Namespace) -> int:
    entries = list_models(args.task)
    print(f"{'ID':>3}  {'Name':<34} {'Task':<4} {'Acc':>6} "
          f"{'Paper Online(ms)':>17} {'Paper Opt':>9}")
    for entry in entries:
        accuracy = "-" if entry.paper.accuracy is None else \
            f"{entry.paper.accuracy:.1f}"
        print(f"{entry.model_id:>3}  {entry.name:<34} {entry.task:<4} "
              f"{accuracy:>6} {entry.paper.online_latency_ms:>17.2f} "
              f"{entry.paper.optimal_batch:>9}")
    return 0


class _StoreError(Exception):
    """An unusable --cache-dir (already reported to stderr)."""


def _open_store(cache_dir: str | None) -> ProfileStore | None:
    """Open the --cache-dir store; None when no caching was requested."""
    if not cache_dir:
        return None
    try:
        return ProfileStore(cache_dir)
    except OSError as err:
        print(f"error: --cache-dir {cache_dir!r} unusable: {err}",
              file=sys.stderr)
        raise _StoreError from err


def cmd_profile(args: argparse.Namespace) -> int:
    entry = get_model(args.model)
    session = XSPSession(args.system, args.framework)
    try:
        store = _open_store(args.cache_dir)
    except _StoreError:
        return 2
    pipeline = AnalysisPipeline(session, runs_per_level=args.runs, store=store)
    profile = pipeline.profile_model(entry.graph, args.batch)
    print(full_report(profile))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    entry = get_model(args.model)
    session = XSPSession(args.system, args.framework)
    batches = [int(b) for b in args.batches.split(",")]
    curve = throughput_curve(session, entry.graph, batches)
    print(f"{entry.name} on {args.system} ({args.framework})")
    print(f"{'batch':>6} {'latency (ms)':>14} {'inputs/s':>10}")
    for batch in sorted(curve.latencies_ms):
        print(f"{batch:>6} {curve.latencies_ms[batch]:>14.2f} "
              f"{curve.throughputs[batch]:>10.1f}")
    print(f"optimal batch size: {curve.optimal_batch} "
          f"(max {curve.max_throughput:.1f} inputs/s)")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import run_all
    from repro.experiments.report import generate

    if args.output:
        generate(args.output)
        print(f"wrote {args.output}")
        return 0
    ids = args.only.split(",") if args.only else None
    results = run_all(ids)
    failures = 0
    for result in results.values():
        print(result.render())
        print()
        failures += sum(1 for c in result.checks if not c.passed)
    print(f"{sum(len(r.checks) for r in results.values()) - failures} checks "
          f"passed, {failures} deviations")
    return 0


def _print_trace_stats(trace) -> None:
    """Span count, per-level/kind breakdown, estimated resident bytes.

    Served entirely by the trace's columnar storage: the level/kind row
    partitions come from the index and the byte estimate from
    ``SpanTable.nbytes`` — no span objects are materialized.
    """
    index = trace.index
    print(f"spans:     {len(trace)}")
    print("per level: " + ", ".join(
        f"{level.name}={len(rows)}"
        for level, rows in sorted(index.level_rows().items())
    ))
    print("per kind:  " + ", ".join(
        f"{kind.value}={len(rows)}"
        for kind, rows in sorted(
            index.kind_rows().items(), key=lambda kv: kv[0].value
        )
    ))
    nbytes = trace.table.nbytes
    print(f"resident:  ~{nbytes} bytes ({nbytes / 1e6:.2f} MB columnar)")


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.tracing.export import trace_to_chrome

    chrome_path = args.output if args.chrome == "" else args.chrome
    if args.chrome == "" and args.output is None:
        # A bare --chrome redirects --output; without one there is
        # nowhere to write the requested Chrome trace (--stats does not
        # change that).
        print("error: --chrome without OUT needs --output", file=sys.stderr)
        return 2
    if args.output is None and not chrome_path and not args.stats:
        print("error: trace needs --output, --chrome OUT, and/or --stats",
              file=sys.stderr)
        return 2
    entry = get_model(args.model)
    session = XSPSession(args.system, args.framework)
    config = ProfilingConfig(levels=MLLibG) if args.library_level \
        else ProfilingConfig()
    run = session.profile(entry.graph, args.batch, config)
    written = []
    if args.output and args.output != chrome_path:
        save_trace(run.trace, args.output)
        written.append(args.output)
    if chrome_path:
        with open(chrome_path, "w") as fh:
            fh.write(trace_to_chrome(run.trace))
        written.append(chrome_path)
    destinations = f" -> {', '.join(written)}" if written else ""
    print(f"captured {len(run.trace)} spans "
          f"({len(run.kernels)} kernels){destinations}")
    if args.stats:
        _print_trace_stats(run.trace)
    return 0


def _sweep_batches(spec: str, batch: int) -> list[int]:
    """Parse advise's --sweep: explicit list, 'auto' doubling, or 'none'."""
    if spec == "none":
        return []
    if spec == "auto":
        batches, b = [], 1
        while b <= max(2 * batch, 8):
            batches.append(b)
            b *= 2
        return batches
    return [int(b) for b in spec.split(",")]


def _print_insight_report(report, args: argparse.Namespace) -> None:
    if args.as_json:
        print(json.dumps(
            report.to_dict(min_severity=args.min_severity), indent=2
        ))
    else:
        print(report.render(min_severity=args.min_severity))


def _advise_from_trace(args: argparse.Namespace) -> int:
    """Insights over an exported capture — no re-profiling.

    Reuses the diff machinery's ``profile_from_trace`` single-run view,
    and hands the rules the raw trace too, so the timeline rules (idle
    bubbles etc.) run against the capture's real schedule.
    """
    from repro.analysis.diff.sources import profile_from_trace
    from repro.insights import advise as run_rules
    from repro.tracing.export import load_trace

    try:
        trace = load_trace(args.from_trace)
    except (OSError, ValueError, KeyError) as err:
        print(f"error: --from-trace {args.from_trace!r}: {err}",
              file=sys.stderr)
        return 2
    report = run_rules(profile_from_trace(trace), trace=trace)
    _print_insight_report(report, args)
    return 0


def _advise_live(pipeline, graph, args: argparse.Namespace) -> int:
    """Follow an in-flight capture, printing one line per refresh."""
    if args.evaluations < 1:
        print("error: --evaluations must be at least 1", file=sys.stderr)
        return 2
    # With --json, stdout stays pure JSON (the machine-readable
    # contract); progress lines go to stderr.
    progress = sys.stderr if args.as_json else sys.stdout
    last = None
    for update in pipeline.advise_live(
        graph, args.batch, evaluations=args.evaluations
    ):
        refreshed = ",".join(update.refreshed_rules) or "-"
        top = next(iter(update.report), None)
        top_text = f"{top.rule} {top.severity:.2f}" if top else "none"
        stage = "final" if update.final else f"+{update.new_rows} rows"
        print(f"[live] spans={update.n_spans} ({stage}) "
              f"refreshed: {refreshed} | top: {top_text}", file=progress)
        last = update
    if last is None:
        print("error: live capture produced no spans", file=sys.stderr)
        return 1
    if not args.as_json:
        print()
    _print_insight_report(last.report, args)
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    if args.from_trace is not None:
        return _advise_from_trace(args)
    if args.model is None:
        print("error: advise needs --model (or --from-trace)",
              file=sys.stderr)
        return 2
    entry = get_model(args.model)
    session = XSPSession(args.system, args.framework)
    try:
        store = _open_store(args.cache_dir)
    except _StoreError:
        return 2
    pipeline = AnalysisPipeline(session, runs_per_level=args.runs, store=store)
    if args.live:
        return _advise_live(pipeline, entry.graph, args)
    report = pipeline.advise(
        entry.graph, args.batch,
        sweep_batches=_sweep_batches(args.sweep, args.batch),
    )
    _print_insight_report(report, args)
    return 0


#: Coordinate-spec fields accepted by `repro diff` sides.
_DIFF_COORDS = ("model", "batch", "system", "framework", "runs")


def _parse_coordinates(spec: str) -> dict[str, str]:
    """Parse "model=7,batch=256,..." into a field dict (ValueError if not)."""
    fields: dict[str, str] = {}
    for part in spec.split(","):
        name, eq, value = part.partition("=")
        if not eq or name.strip() not in _DIFF_COORDS or not value.strip():
            raise ValueError(
                f"bad coordinate {part!r} in {spec!r}; expected "
                f"comma-separated {'/'.join(_DIFF_COORDS)}=VALUE pairs"
            )
        fields[name.strip()] = value.strip()
    if "model" not in fields:
        raise ValueError(f"coordinates {spec!r} need at least model=...")
    return fields


def _resolve_diff_side(spec: str, args: argparse.Namespace, store):
    """One `repro diff` side: a JSON file on disk, else profile coordinates."""
    import os

    from repro.analysis.diff import load_profile_json

    if os.path.isfile(spec):
        return load_profile_json(spec)
    if "=" not in spec:
        raise ValueError(
            f"{spec!r} is neither an existing JSON file nor a coordinate "
            "spec like model=7,batch=256"
        )
    coords = _parse_coordinates(spec)
    entry = get_model(_model_key(coords["model"]))
    session = XSPSession(
        coords.get("system", "Tesla_V100"),
        coords.get("framework", "tensorflow_like"),
    )
    pipeline = AnalysisPipeline(
        session,
        runs_per_level=int(coords.get("runs", args.runs)),
        store=store,
    )
    return pipeline.profile_model(entry.graph, int(coords.get("batch", 1)))


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis.diff import diff_profiles

    try:
        store = _open_store(args.cache_dir)
    except _StoreError:
        return 2
    try:
        baseline = _resolve_diff_side(args.baseline, args, store)
        candidate = _resolve_diff_side(args.candidate, args, store)
    except (ValueError, OSError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    diff = diff_profiles(baseline, candidate)
    if args.as_json:
        print(json.dumps(
            diff.to_dict(min_severity=args.min_severity), indent=2
        ))
    else:
        print(diff.render(min_severity=args.min_severity))
    if (
        args.max_regression is not None
        and diff.regression_fraction > args.max_regression
    ):
        print(
            f"FAILED: candidate regressed "
            f"{100 * diff.regression_fraction:.1f}% "
            f"(gate: {100 * args.max_regression:.1f}%)",
            file=sys.stderr,
        )
        return 1
    return 0


_COMMANDS = {
    "list-models": cmd_list_models,
    "profile": cmd_profile,
    "sweep": cmd_sweep,
    "experiments": cmd_experiments,
    "trace": cmd_trace,
    "advise": cmd_advise,
    "diff": cmd_diff,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
