"""repro — reproduction of "XSP: Across-Stack Profiling and Analysis of
Machine Learning Models on GPUs" (Li, Dakkak et al., IPDPS 2020).

Quickstart::

    from repro import XSPSession, AnalysisPipeline
    from repro.models import get_model

    session = XSPSession(system="Tesla_V100", framework="tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=3)
    profile = pipeline.profile_model(get_model(7).graph, batch=256)
    from repro.analysis.report import full_report
    print(full_report(profile))

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.tracing`    — distributed-tracing substrate (spans, server,
  interval tree, parent reconstruction)
* :mod:`repro.sim`        — simulated GPU/CUDA/CUPTI/cuDNN/Eigen substrate
* :mod:`repro.frameworks` — TensorFlow-like and MXNet-like framework sims
* :mod:`repro.models`     — the 65-model zoo of Tables VIII and X
* :mod:`repro.core`       — XSP sessions, leveled experimentation, pipeline
* :mod:`repro.analysis`   — the 15 automated analyses of Table I
* :mod:`repro.insights`   — rule-based across-stack bottleneck detection
* :mod:`repro.campaign`   — Sec. IV-scale measurement grids
* :mod:`repro.workloads`  — batch sweeps and quick measurements
"""

from repro.core import (
    AnalysisPipeline,
    LeveledExperiment,
    ProfiledRun,
    ProfilingConfig,
    XSPSession,
)
from repro.tracing import TracingServer

__version__ = "1.0.0"

__all__ = [
    "AnalysisPipeline",
    "LeveledExperiment",
    "ProfiledRun",
    "ProfilingConfig",
    "TracingServer",
    "XSPSession",
    "__version__",
]
