"""Figure 7 — A12 per-layer GPU flops / DRAM reads / DRAM writes
(ResNet50, batch 256)."""

from __future__ import annotations

from repro.analysis import (
    flops_stage,
    layer_dram_read_series,
    layer_dram_write_series,
    layer_flops_series,
    memory_access_stage,
)
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    flops = layer_flops_series(profile)
    reads = layer_dram_read_series(profile)
    writes = layer_dram_write_series(profile)

    result = ExperimentResult(
        exp_id="Figure 7",
        title="A12 per-layer flops and DRAM traffic (ResNet50, batch 256)",
        paper={"total_gflops": 1742.39, "dram_read_gb": 23.19,
               "dram_write_gb": 31.10},
        measured={"total_gflops": sum(v for _, v in flops),
                  "dram_read_gb": sum(v for _, v in reads) / 1e3,
                  "dram_write_gb": sum(v for _, v in writes) / 1e3,
                  "flops_stage": flops_stage(profile),
                  "access_stage": memory_access_stage(profile)},
    )
    # Our flop counting (2*MACs over the exact layer shapes) lands ~20%
    # above the paper's reported counter values; the shape is what matters.
    total_gflops = sum(v for _, v in flops)
    result.check("total model flops within 40% of paper",
                 0.6 * 1742 < total_gflops < 1.4 * 1742,
                 f"{total_gflops:.0f} Gflops")
    read_gb = sum(v for _, v in reads) / 1e3
    write_gb = sum(v for _, v in writes) / 1e3
    result.check("DRAM reads within 40% of paper (23.2 GB)",
                 0.6 * 23.19 < read_gb < 1.4 * 23.19, f"{read_gb:.1f} GB")
    result.check("DRAM writes within 40% of paper (31.1 GB)",
                 0.6 * 31.10 < write_gb < 1.4 * 31.10, f"{write_gb:.1f} GB")
    conv_layers = [l for l in profile.layers if l.layer_type == "Conv2D"]
    conv_flops = sum(l.flops for l in conv_layers)
    result.check("convolutions account for >90% of model flops",
                 conv_flops > 0.9 * profile.flops)
    peaks = sorted(flops, key=lambda p: -p[1])[:5]
    result.artifact = "  top-5 flop layers: " + ", ".join(
        f"#{i} ({v:.1f} Gflop)" for i, v in peaks
    )
    return result
