"""Figure 2 — leveled experimentation overhead ladder.

Paper values for MLPerf_ResNet50_v1.5 at batch 256 on Tesla_V100:
model prediction 275.1 ms at M; +157 ms layer-profiling overhead at M/L;
further GPU-profiling overhead at M/L/G (the paper's total reaches
490.3 ms with its instrumentation settings).
"""

from __future__ import annotations

from repro.core import LeveledExperiment
from repro.experiments import context
from repro.experiments.result import ExperimentResult
from repro.models import get_model


def run() -> ExperimentResult:
    experiment = LeveledExperiment(
        context.session(), runs_per_level=context.RUNS_PER_LEVEL
    )
    leveled = experiment.run(get_model(context.RESNET50_ID).graph, 256)
    m = leveled.predict_latency_at("M")
    ml = leveled.predict_latency_at("M/L")
    mlg = leveled.predict_latency_at("M/L/G")
    ladder = leveled.overhead_ladder()

    result = ExperimentResult(
        exp_id="Figure 2",
        title="Leveled experimentation: per-level profiling overhead "
              "(ResNet50, batch 256, Tesla_V100)",
        paper={"model_ms": 275.1, "layer_overhead_ms": 157.0,
               "accurate_layers_despite_overhead": True},
        measured={"model_ms": m, "layer_overhead_ms": ladder["M/L"],
                  "gpu_overhead_ms": ladder["M/L/G"]},
    )
    result.check("baseline model latency within 35% of paper",
                 0.65 * 275.1 < m < 1.35 * 275.1, f"{m:.1f} ms")
    result.check("layer profiling adds ~157 ms overhead",
                 100 < ladder["M/L"] < 220, f"{ladder['M/L']:.1f} ms")
    result.check("each deeper level costs more", m < ml < mlg)
    result.check("GPU timeline capture overhead is positive and smaller "
                 "than layer overhead",
                 0 < ladder["M/L/G"] < ladder["M/L"],
                 f"{ladder['M/L/G']:.1f} ms")
    rows = [f"  {'level':8} {'predict (ms)':>14} {'overhead (ms)':>14}"]
    rows.append(f"  {'M':8} {m:>14.2f} {'-':>14}")
    rows.append(f"  {'M/L':8} {ml:>14.2f} {ladder['M/L']:>14.2f}")
    rows.append(f"  {'M/L/G':8} {mlg:>14.2f} {ladder['M/L/G']:>14.2f}")
    result.artifact = "\n".join(rows)
    return result
