"""Figure 5 — A3 per-layer latency and A4 per-layer memory allocation
(ResNet50, batch 256).

Paper: latency and memory allocation concentrate in the early-executed
layers ("the model latency can be mostly attributed to the early executed
layers ... memory allocation is high for the early stage").
"""

from __future__ import annotations

from repro.analysis import (
    latency_stage,
    layer_latency_series,
    layer_memory_series,
    memory_stage,
)
from repro.analysis.stages import stage_totals
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    lat_series = layer_latency_series(profile)
    mem_series = layer_memory_series(profile)
    lat_totals = stage_totals(profile, lambda l: l.latency_ms)
    mem_totals = stage_totals(profile, lambda l: l.alloc_mb)

    result = ExperimentResult(
        exp_id="Figure 5",
        title="A3/A4 per-layer latency and memory allocation in execution "
              "order (ResNet50, batch 256)",
        paper={"memory_stage": "B", "memory_declines_toward_end": True},
        measured={"latency_stage": latency_stage(profile),
                  "memory_stage": memory_stage(profile),
                  "beginning_mem_mb": mem_totals["B"],
                  "end_mem_mb": mem_totals["E"]},
    )
    result.check("memory allocation dominated by the beginning stage",
                 memory_stage(profile) == "B")
    result.check("beginning allocates >2x the end stage",
                 mem_totals["B"] > 2 * mem_totals["E"])
    result.check("series cover every executed layer",
                 len(lat_series) == len(profile.layers) == len(mem_series))
    peak_mem_layer = max(mem_series, key=lambda p: p[1])
    result.check("peak per-layer allocation occurs early",
                 peak_mem_layer[0] < len(profile.layers) / 3,
                 f"layer {peak_mem_layer[0]}")
    rows = ["  stage    latency(ms)    alloc(MB)"]
    for stage in ("B", "M", "E"):
        rows.append(f"  {stage:5} {lat_totals[stage]:>12.1f} "
                    f"{mem_totals[stage]:>12.0f}")
    result.artifact = "\n".join(rows)
    return result
