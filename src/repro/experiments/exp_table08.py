"""Table VIII — characterization of all 55 TensorFlow models.

Per model: graph size, online latency (batch 1), maximum throughput,
optimal batch size, and convolution latency percentage, compared against
the paper's reported values.  Expected qualitative agreements (Sec. IV-A):

* IC models attribute 36-80% of latency to convolutions;
* SSD-style OD models attribute <15% (Where layers dominate);
* instance segmentation sits in between; DeepLab ~40-50%;
* online latency ordering follows model size within a family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import convolution_latency_percentage
from repro.analysis.tables import Column, Table
from repro.core import ML, ProfilingConfig
from repro.experiments import context
from repro.experiments.result import ExperimentResult
from repro.frameworks.profiler_format import PARSERS
from repro.frameworks.shapes import model_weight_bytes
from repro.models import get_model, list_models


@dataclass
class ModelRow:
    model_id: int
    name: str
    task: str
    graph_mb: float
    online_ms: float
    max_throughput: float
    optimal_batch: int
    conv_pct: float


def _conv_percentage(model_id: int, batch: int) -> float:
    """Conv share of layer latency from one M/L-level profile."""
    session = context.session()
    graph = get_model(model_id).graph
    run = session.profile(graph, batch, ProfilingConfig(levels=ML, metrics=()))
    parser = PARSERS[run.framework]
    records = parser(run.prediction.native_profile)
    conv = sum(r.duration_ns for r in records
               if r.layer_type in ("Conv2D", "DepthwiseConv2dNative"))
    total = sum(r.duration_ns for r in records)
    return 100.0 * conv / total if total else 0.0


def characterize(model_id: int) -> ModelRow:
    entry = get_model(model_id)
    curve = context.curve(model_id, entry.sweep_batches)
    optimal = curve.optimal_batch
    return ModelRow(
        model_id=model_id,
        name=entry.name,
        task=entry.task,
        graph_mb=model_weight_bytes(entry.graph) / 1e6,
        online_ms=curve.online_latency_ms,
        max_throughput=curve.max_throughput,
        optimal_batch=optimal,
        conv_pct=_conv_percentage(model_id, optimal),
    )


def run(model_ids: list[int] | None = None) -> ExperimentResult:
    entries = list_models() if model_ids is None else [
        get_model(m) for m in model_ids
    ]
    rows = [characterize(e.model_id) for e in entries]
    by_id = {r.model_id: r for r in rows}

    table = Table(
        title="Table VIII model characterization (Tesla_V100)",
        columns=[
            Column("id", "ID", "d"),
            Column("name", "Name", align="<"),
            Column("task", "Task"),
            Column("graph_mb", "Graph (MB)", ".0f"),
            Column("online_ms", "Online Latency (ms)", ".2f"),
            Column("max_tput", "Max Throughput (/s)", ".1f"),
            Column("optimal", "Optimal Batch", "d"),
            Column("conv_pct", "Conv %", ".1f"),
            Column("paper_online", "Paper Online", ".2f"),
            Column("paper_tput", "Paper Tput", ".1f"),
            Column("paper_opt", "Paper Opt", "d"),
            Column("paper_conv", "Paper Conv %", ".1f"),
        ],
    )
    for row in rows:
        paper = get_model(row.model_id).paper
        table.add(id=row.model_id, name=row.name, task=row.task,
                  graph_mb=row.graph_mb, online_ms=row.online_ms,
                  max_tput=row.max_throughput, optimal=row.optimal_batch,
                  conv_pct=row.conv_pct,
                  paper_online=paper.online_latency_ms,
                  paper_tput=paper.max_throughput,
                  paper_opt=paper.optimal_batch,
                  paper_conv=paper.conv_pct)

    result = ExperimentResult(
        exp_id="Table VIII",
        title=f"Characterization of {len(rows)} TensorFlow models",
        paper={"ic_conv_band": "36-80%", "ssd_conv_band": "<15%"},
        measured={"models": len(rows)},
    )
    ic = [r for r in rows if r.task == "IC"]
    if ic:
        result.check("IC models conv-dominated (paper band 36-80%)",
                     all(28 < r.conv_pct < 92 for r in ic),
                     f"range {min(r.conv_pct for r in ic):.0f}-"
                     f"{max(r.conv_pct for r in ic):.0f}%")
    ssd = [r for r in rows if r.task == "OD" and "SSD" in r.name]
    if ssd:
        result.check("SSD detectors are Where-dominated: conv share <23% "
                     "(paper 0.6-14.9%)",
                     all(r.conv_pct < 23 for r in ssd),
                     f"max {max(r.conv_pct for r in ssd):.1f}%")
    frcnn = [r for r in rows
             if r.task == "OD" and "Faster" in r.name and "NAS" not in r.name]
    if frcnn:
        result.check("Faster-RCNN conv share low but above SSD (paper 5-13%)",
                     all(r.conv_pct < 35 for r in frcnn))
    nas = by_id.get(38)
    if nas:
        od_others = [r.online_ms for r in rows
                     if r.task == "OD" and r.model_id != 38]
        result.check("Faster_RCNN_NAS is conv-dominated and by far the "
                     "slowest detector (paper: 5079 ms, 85% conv)",
                     nas.conv_pct > 50 and nas.online_ms > 500
                     and (not od_others
                          or nas.online_ms > 4 * max(od_others)),
                     f"{nas.online_ms:.0f} ms, {nas.conv_pct:.0f}% conv")
    if ic:
        within = [
            r for r in ic
            if 0.4 * get_model(r.model_id).paper.online_latency_ms
            < r.online_ms
            < 2.5 * get_model(r.model_id).paper.online_latency_ms
        ]
        result.check("IC online latencies within 2.5x of paper values",
                     len(within) >= int(0.8 * len(ic)),
                     f"{len(within)}/{len(ic)}")
        opt_match = [
            r for r in ic
            if 0.5 * get_model(r.model_id).paper.optimal_batch
            <= r.optimal_batch
            <= 2 * get_model(r.model_id).paper.optimal_batch
        ]
        result.check("IC optimal batch sizes within one doubling of paper "
                     "for most models (tiny MobileNets saturate later in "
                     "our substrate)",
                     len(opt_match) >= int(0.55 * len(ic)),
                     f"{len(opt_match)}/{len(ic)}")
    result.artifact = table.render()
    return result
