"""Figure 8 — A13 normalized GPU vs non-GPU latency per layer
(ResNet50, batch 256).

Paper: most layers are GPU-dominated at batch 256 (the model-level GPU
latency share is 92.4%), with non-GPU time visible on cheap layers.
"""

from __future__ import annotations

from repro.analysis import gpu_vs_nongpu_series, model_non_gpu_latency_ms
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    series = gpu_vs_nongpu_series(profile)
    gpu_shares = [share for _, share, _ in series]
    mean_share = sum(gpu_shares) / len(gpu_shares)

    result = ExperimentResult(
        exp_id="Figure 8",
        title="A13 GPU vs non-GPU latency per layer (ResNet50, batch 256)",
        paper={"model_gpu_latency_pct": 92.43},
        measured={"model_gpu_latency_pct": profile.gpu_latency_percentage,
                  "mean_layer_gpu_share_pct": 100 * mean_share,
                  "non_gpu_ms": model_non_gpu_latency_ms(profile)},
    )
    result.check("model GPU latency share ~85-97% (paper 92.4%)",
                 85 < profile.gpu_latency_percentage < 97,
                 f"{profile.gpu_latency_percentage:.1f}%")
    result.check("every layer's shares sum to 1",
                 all(abs(g + n - 1.0) < 1e-9 for _, g, n in series))
    heavy = [l for l in profile.layers
             if l.latency_ms > 1.0 and l.kernels]  # Data feeds are host-side
    result.check("expensive compute layers are GPU-dominated",
                 all(l.kernel_latency_ms > 0.8 * l.latency_ms for l in heavy))
    cheap_low_gpu = [
        l for l in profile.layers
        if l.latency_ms < 0.05 and l.kernel_latency_ms < 0.7 * l.latency_ms
    ]
    result.check("some cheap layers show visible non-GPU time",
                 len(cheap_low_gpu) > 0, f"{len(cheap_low_gpu)} layers")
    result.artifact = (
        f"  mean per-layer GPU share {100 * mean_share:.1f}% | model share "
        f"{profile.gpu_latency_percentage:.1f}% | non-GPU "
        f"{model_non_gpu_latency_ms(profile):.1f} ms"
    )
    return result
