"""Experiment result container: paper-vs-measured with agreement checks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Check:
    """One qualitative agreement check against the paper."""

    claim: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "OK " if self.passed else "DEV"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"  [{mark}] {self.claim}{suffix}"


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    exp_id: str
    title: str
    paper: dict[str, Any] = field(default_factory=dict)
    measured: dict[str, Any] = field(default_factory=dict)
    checks: list[Check] = field(default_factory=list)
    artifact: str = ""  # rendered table / series, for the report

    def check(self, claim: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(claim=claim, passed=bool(passed), detail=detail))

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def n_passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    def render(self, *, include_artifact: bool = True) -> str:
        lines = [f"{self.exp_id}: {self.title}",
                 "-" * (len(self.exp_id) + 2 + len(self.title))]
        if self.paper:
            lines.append("paper:    " + _fmt(self.paper))
        if self.measured:
            lines.append("measured: " + _fmt(self.measured))
        lines.extend(c.render() for c in self.checks)
        if include_artifact and self.artifact:
            lines.append("")
            lines.append(self.artifact)
        return "\n".join(lines)


def _fmt(values: dict[str, Any]) -> str:
    parts = []
    for key, value in values.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return ", ".join(parts)
