"""Figure 10 — whole-model roofline across batch sizes (ResNet50).

Paper: "the model is compute-bound except for batch sizes 16 and 32
where it is memory-bound", caused by the cuDNN algorithm switch
(IMPLICIT_GEMM below batch 16, IMPLICIT_PRECOMP_GEMM above); the overall
achieved occupancy increases as the batch size approaches the optimum.
"""

from __future__ import annotations

from repro.analysis import model_roofline_points
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    sweep = context.resnet50_sweep()
    points = model_roofline_points(sweep)
    bound = {b: p.memory_bound for b, p in sweep.items()}
    occupancy = {b: p.achieved_occupancy for b, p in sweep.items()}

    result = ExperimentResult(
        exp_id="Figure 10",
        title="A15 model roofline across batch sizes (ResNet50, Tesla_V100)",
        paper={"memory_bound_batches": [16, 32],
               "occupancy_rises_to_optimum": True},
        measured={"memory_bound_batches":
                  sorted(b for b, flag in bound.items() if flag),
                  "occ_bs1_pct": 100 * occupancy[1],
                  "occ_bs256_pct": 100 * occupancy[256]},
    )
    result.check("memory-bound at exactly batch sizes 16 and 32",
                 sorted(b for b, flag in bound.items() if flag) == [16, 32])
    result.check("achieved occupancy rises toward the optimal batch",
                 occupancy[1] < occupancy[16] < occupancy[256])
    kernels_small = {k.name for k in sweep[8].kernels}
    kernels_large = {k.name for k in sweep[64].kernels}
    result.check(
        "cuDNN algorithm switch at batch 16 "
        "(implicit_convolve_sgemm -> scudnn precomp kernels)",
        any("implicit_convolve_sgemm" in n for n in kernels_small)
        and any("scudnn_128x" in n for n in kernels_large)
        and not any("implicit_convolve_sgemm" in n for n in kernels_large),
    )
    rows = [f"  {'batch':>6} {'AI (flop/B)':>12} {'occ %':>7}  bound"]
    for point, batch in zip(points, sorted(sweep)):
        rows.append(
            f"  {batch:>6} {point.arithmetic_intensity:>12.2f} "
            f"{100 * occupancy[batch]:>7.1f}  "
            f"{'memory' if bound[batch] else 'compute'}"
        )
    result.artifact = "\n".join(rows)
    return result
