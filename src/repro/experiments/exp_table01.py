"""Table I — the 15-analysis capability matrix."""

from __future__ import annotations

from repro.analysis import ANALYSIS_REGISTRY
from repro.analysis.tables import Column, Table
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="Table I",
        title="The 15 analyses performed by XSP vs existing tool classes",
        paper={"analyses": 15, "xsp_exclusive": "A11-A14"},
    )
    table = Table(
        title="Table I capability matrix",
        columns=[
            Column("id", "Analysis", align="<"),
            Column("description", "Description", align="<"),
            Column("levels", "Levels"),
            Column("e2e", "End-to-End"),
            Column("fw", "Framework Profilers"),
            Column("nv", "NVIDIA Profilers"),
            Column("xsp", "XSP"),
        ],
    )
    exclusive = []
    for info in ANALYSIS_REGISTRY:
        table.add(
            id=info.analysis_id, description=info.description,
            levels=info.levels, e2e=info.end_to_end_benchmarking,
            fw=info.framework_profilers, nv=info.nvidia_profilers,
            xsp=info.xsp,
        )
        if not (info.end_to_end_benchmarking or info.framework_profilers
                or info.nvidia_profilers):
            exclusive.append(info.analysis_id)
    result.measured = {
        "analyses": len(ANALYSIS_REGISTRY),
        "xsp_exclusive": "-".join([exclusive[0], exclusive[-1]]),
    }
    result.check("15 analyses are implemented", len(ANALYSIS_REGISTRY) == 15)
    result.check("A11-A14 require XSP's across-stack correlation",
                 exclusive == ["A11", "A12", "A13", "A14"])
    result.check("XSP performs all analyses",
                 all(a.xsp for a in ANALYSIS_REGISTRY))
    result.artifact = table.render()
    return result
