"""Table IX — in-depth characterization of the 37 IC models at their
optimal batch sizes.

Paper: GPU latency percentage 53.7-95.6%, roughly proportional to
flops/memory accesses; high-batch-latency models have high GPU share;
20 of 37 memory-bound; stage dominance varies across models.
"""

from __future__ import annotations

from repro.analysis.stages import stage_summary
from repro.analysis.tables import Column, Table
from repro.experiments import context
from repro.experiments.result import ExperimentResult
from repro.models import get_model
from repro.models.zoo import image_classification_ids


def run(model_ids: list[int] | None = None) -> ExperimentResult:
    ids = model_ids if model_ids is not None else image_classification_ids()
    table = Table(
        title="Table IX in-depth IC characterization (optimal batch, V100)",
        columns=[
            Column("id", "ID", "d"),
            Column("batch", "Batch", "d"),
            Column("latency_ms", "Batch Latency (ms)", ".2f"),
            Column("gpu_pct", "GPU Latency %", ".2f"),
            Column("gflops", "GPU Gflops", ".1f"),
            Column("read_gb", "DRAM Read (GB)", ".2f"),
            Column("write_gb", "DRAM Write (GB)", ".2f"),
            Column("occ_pct", "Occupancy %", ".1f"),
            Column("ai", "Arithmetic Intensity", ".2f"),
            Column("tflops", "Throughput (TFlops)", ".2f"),
            Column("memory_bound", "Memory Bound?"),
            Column("stages", "Stages (lat/mem/flops/acc)", align="<"),
        ],
    )
    profiles = {}
    for model_id in ids:
        entry = get_model(model_id)
        batch = entry.paper.optimal_batch
        profile = context.model_profile(model_id, batch)
        profiles[model_id] = profile
        stages = stage_summary(profile)
        table.add(
            id=model_id, batch=batch,
            latency_ms=profile.model_latency_ms,
            gpu_pct=profile.gpu_latency_percentage,
            gflops=profile.flops / 1e9,
            read_gb=profile.dram_read_bytes / 1e9,
            write_gb=profile.dram_write_bytes / 1e9,
            occ_pct=100 * profile.achieved_occupancy,
            ai=profile.arithmetic_intensity,
            tflops=profile.arithmetic_throughput_tflops,
            memory_bound=profile.memory_bound,
            stages="/".join(stages[k] for k in
                            ("latency", "memory", "flops", "access")),
        )

    result = ExperimentResult(
        exp_id="Table IX",
        title=f"In-depth characterization of {len(ids)} IC models",
        paper={"gpu_pct_band": "53.7-95.6", "memory_bound": 20},
        measured={
            "gpu_pct_band": "%.1f-%.1f" % (
                min(p.gpu_latency_percentage for p in profiles.values()),
                max(p.gpu_latency_percentage for p in profiles.values()),
            ),
            "memory_bound": sum(1 for p in profiles.values()
                                if p.memory_bound),
        },
    )
    result.check("GPU latency percentages span a wide band (paper 54-96%)",
                 min(p.gpu_latency_percentage for p in profiles.values()) < 80
                 and max(p.gpu_latency_percentage
                         for p in profiles.values()) > 88)
    heavy = [p for p in profiles.values() if p.model_latency_ms > 150]
    light = [p for p in profiles.values() if p.model_latency_ms < 25]
    if heavy and light:
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        result.check(
            "high-batch-latency models have higher GPU share",
            mean([p.gpu_latency_percentage for p in heavy])
            > mean([p.gpu_latency_percentage for p in light]),
        )
    if len(ids) > 20:
        bound = sum(1 for p in profiles.values() if p.memory_bound)
        result.check("roughly 20 of 37 models memory-bound",
                     12 <= bound <= 26, f"{bound}")
    stage_kinds = {
        "/".join(stage_summary(p)[k] for k in
                 ("latency", "memory", "flops", "access"))
        for p in profiles.values()
    }
    result.check("stage dominance varies across models",
                 len(stage_kinds) >= 3, f"{len(stage_kinds)} patterns")
    result.artifact = table.render()
    return result
