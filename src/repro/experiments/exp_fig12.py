"""Figure 12 — roofline of the 37 image-classification models at their
optimal batch sizes on Tesla_V100.

Paper: 20 of 37 models are memory-bound; models with low compute and
memory requirements (MobileNets) tend to be memory-bound and less
accurate; all models achieve at most 52% of the theoretical peak.
"""

from __future__ import annotations

from repro.experiments import context
from repro.experiments.result import ExperimentResult
from repro.models import get_model
from repro.models.zoo import image_classification_ids


def run() -> ExperimentResult:
    measurements = {}
    for model_id in image_classification_ids():
        entry = get_model(model_id)
        batch = entry.paper.optimal_batch
        profile = context.model_profile(model_id, batch)
        measurements[model_id] = profile

    memory_bound = [m for m, p in measurements.items() if p.memory_bound]
    peak_fraction = {
        m: p.arithmetic_throughput_tflops / p.gpu.peak_tflops
        for m, p in measurements.items()
    }
    mobilenet_ids = [m for m in measurements
                     if "MobileNet" in get_model(m).name]

    result = ExperimentResult(
        exp_id="Figure 12",
        title="Roofline of the 37 IC models at their optimal batch sizes",
        paper={"memory_bound_models": 20, "max_peak_fraction": 0.52},
        measured={"memory_bound_models": len(memory_bound),
                  "max_peak_fraction": max(peak_fraction.values())},
    )
    result.check("roughly half the IC models are memory-bound "
                 "(paper: 20 of 37)",
                 14 <= len(memory_bound) <= 26,
                 f"{len(memory_bound)} of 37")
    result.check("most MobileNet variants are memory-bound",
                 sum(1 for m in mobilenet_ids if m in memory_bound)
                 > len(mobilenet_ids) / 2)
    result.check("no model reaches theoretical peak (paper max 52%; our "
                 "uniform conv-efficiency model lacks real cuDNN's "
                 "large-spatial inefficiency, so VGG-style models sit "
                 "higher)",
                 max(peak_fraction.values()) < 0.85,
                 f"max {100 * max(peak_fraction.values()):.0f}%")
    big = [m for m, p in measurements.items()
           if p.flops / p.batch > 20e9]  # >20 Gflop per image
    result.check("compute-heavy models are compute-bound",
                 all(m not in memory_bound for m in big))
    rows = [f"  {'id':>3} {'model':<28} {'AI':>8} {'Tflops':>8}  bound"]
    for model_id, profile in sorted(measurements.items()):
        rows.append(
            f"  {model_id:>3} {get_model(model_id).name:<28} "
            f"{profile.arithmetic_intensity:>8.2f} "
            f"{profile.arithmetic_throughput_tflops:>8.2f}  "
            f"{'memory' if profile.memory_bound else 'compute'}"
        )
    result.artifact = "\n".join(rows)
    return result
