"""Shared, cached measurement context for the experiment suite.

Every experiment module pulls its inputs from here so profiles/sweeps are
computed once per process regardless of how many experiments (or
benchmarks) consume them.

Two cache layers:

* an in-process ``lru_cache`` (always on), and
* an optional on-disk :class:`~repro.core.cache.ProfileStore` consulted
  before any profile is recomputed, enabled by pointing the
  ``XSP_PROFILE_CACHE`` environment variable at a directory.  With a warm
  store, repeat benchmark/CLI invocations skip the leveled-experiment
  ladder entirely.
"""

from __future__ import annotations

import functools
import os

from repro.core import AnalysisPipeline, XSPSession
from repro.core.cache import ProfileStore
from repro.core.pipeline import ModelProfile
from repro.models import MXNET_ZOO, get_model
from repro.workloads import ThroughputCurve, throughput_curve

#: Repetitions per profiling level; 2 keeps the full suite fast while still
#: exercising the trimmed-mean machinery.
RUNS_PER_LEVEL = 2

#: Environment variable naming the on-disk profile-store directory.
CACHE_ENV = "XSP_PROFILE_CACHE"

RESNET50_ID = 7
RESNET50_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
SYSTEMS = ("Quadro_RTX", "Tesla_V100", "Tesla_P100", "Tesla_P4", "Tesla_M60")


@functools.lru_cache(maxsize=None)
def profile_store() -> ProfileStore | None:
    """The on-disk store named by ``XSP_PROFILE_CACHE``, or ``None``."""
    root = os.environ.get(CACHE_ENV)
    return ProfileStore(root) if root else None


@functools.lru_cache(maxsize=None)
def session(system: str = "Tesla_V100", framework: str = "tensorflow_like") -> XSPSession:
    return XSPSession(system=system, framework=framework)


@functools.lru_cache(maxsize=None)
def pipeline(system: str = "Tesla_V100", framework: str = "tensorflow_like") -> AnalysisPipeline:
    return AnalysisPipeline(session(system, framework),
                            runs_per_level=RUNS_PER_LEVEL,
                            store=profile_store())


@functools.lru_cache(maxsize=None)
def model_profile(
    model_id: int,
    batch: int,
    system: str = "Tesla_V100",
    framework: str = "tensorflow_like",
) -> ModelProfile:
    graph = get_model(model_id).graph
    return pipeline(system, framework).profile_model(graph, batch)


@functools.lru_cache(maxsize=None)
def resnet50_sweep(system: str = "Tesla_V100") -> dict[int, ModelProfile]:
    graph = get_model(RESNET50_ID).graph
    return pipeline(system).sweep(graph, RESNET50_BATCHES)


@functools.lru_cache(maxsize=None)
def curve(
    model_id: int,
    batches: tuple[int, ...],
    system: str = "Tesla_V100",
    framework: str = "tensorflow_like",
) -> ThroughputCurve:
    graph = get_model(model_id).graph
    return throughput_curve(session(system, framework), graph, batches, runs=2)


@functools.lru_cache(maxsize=None)
def mxnet_graph(model_id: int):
    return MXNET_ZOO[model_id].graph


def clear() -> None:
    """Drop all in-process cached measurements (used by benchmarks to time
    cold runs).  The on-disk store, if any, is left intact — delete its
    directory (or call ``profile_store().clear()``) to force a true cold
    recompute."""
    for fn in (session, pipeline, model_profile, resnet50_sweep, curve,
               mxnet_graph, profile_store):
        fn.cache_clear()
