"""Shared, cached measurement context for the experiment suite.

Every experiment module pulls its inputs from here so profiles/sweeps are
computed once per process regardless of how many experiments (or
benchmarks) consume them.
"""

from __future__ import annotations

import functools

from repro.core import AnalysisPipeline, XSPSession
from repro.core.pipeline import ModelProfile
from repro.models import MXNET_ZOO, get_model
from repro.workloads import ThroughputCurve, throughput_curve

#: Repetitions per profiling level; 2 keeps the full suite fast while still
#: exercising the trimmed-mean machinery.
RUNS_PER_LEVEL = 2

RESNET50_ID = 7
RESNET50_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
SYSTEMS = ("Quadro_RTX", "Tesla_V100", "Tesla_P100", "Tesla_P4", "Tesla_M60")


@functools.lru_cache(maxsize=None)
def session(system: str = "Tesla_V100", framework: str = "tensorflow_like") -> XSPSession:
    return XSPSession(system=system, framework=framework)


@functools.lru_cache(maxsize=None)
def pipeline(system: str = "Tesla_V100", framework: str = "tensorflow_like") -> AnalysisPipeline:
    return AnalysisPipeline(session(system, framework),
                            runs_per_level=RUNS_PER_LEVEL)


@functools.lru_cache(maxsize=None)
def model_profile(
    model_id: int,
    batch: int,
    system: str = "Tesla_V100",
    framework: str = "tensorflow_like",
) -> ModelProfile:
    graph = get_model(model_id).graph
    return pipeline(system, framework).profile_model(graph, batch)


@functools.lru_cache(maxsize=None)
def resnet50_sweep(system: str = "Tesla_V100") -> dict[int, ModelProfile]:
    graph = get_model(RESNET50_ID).graph
    return pipeline(system).sweep(graph, RESNET50_BATCHES)


@functools.lru_cache(maxsize=None)
def curve(
    model_id: int,
    batches: tuple[int, ...],
    system: str = "Tesla_V100",
    framework: str = "tensorflow_like",
) -> ThroughputCurve:
    graph = get_model(model_id).graph
    return throughput_curve(session(system, framework), graph, batches, runs=2)


@functools.lru_cache(maxsize=None)
def mxnet_graph(model_id: int):
    return MXNET_ZOO[model_id].graph


def clear() -> None:
    """Drop all cached measurements (used by benchmarks to time cold runs)."""
    for fn in (session, pipeline, model_profile, resnet50_sweep, curve,
               mxnet_graph):
        fn.cache_clear()
