"""Table VI — A15 model aggregate across batch sizes (ResNet50).

Paper: kernel latency tracks model latency; flops and DRAM traffic grow
with batch; achieved occupancy rises from 22.7% (batch 1) to ~44%
(batch 128); memory-bound at batch sizes 16 and 32 only.
"""

from __future__ import annotations

from repro.analysis import model_aggregate_table
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    sweep = context.resnet50_sweep()
    table = model_aggregate_table(sweep, model_name="MLPerf_ResNet50_v1.5",
                                  system="Tesla_V100")
    rows = {r["batch"]: r for r in table}

    result = ExperimentResult(
        exp_id="Table VI",
        title="A15 aggregate across batch sizes (ResNet50, Tesla_V100)",
        paper={"bs256_latency_ms": 275.05, "bs256_kernel_ms": 254.25,
               "memory_bound": [16, 32]},
        measured={"bs256_latency_ms": rows[256]["model_latency_ms"],
                  "bs256_kernel_ms": rows[256]["kernel_latency_ms"],
                  "memory_bound": [b for b, r in sorted(rows.items())
                                   if r["memory_bound"]]},
    )
    result.check("batch-256 model latency within 35% of paper (275 ms)",
                 0.65 * 275 < rows[256]["model_latency_ms"] < 1.35 * 275,
                 f"{rows[256]['model_latency_ms']:.1f} ms")
    result.check("kernel latency < model latency at every batch",
                 all(r["kernel_latency_ms"] < r["model_latency_ms"]
                     for r in rows.values()))
    result.check("memory-bound rows are exactly batch 16 and 32",
                 [b for b, r in sorted(rows.items()) if r["memory_bound"]]
                 == [16, 32])
    result.check("occupancy increases monotonically in batch (paper trend)",
                 all(rows[a]["occupancy_pct"] <= rows[b]["occupancy_pct"] + 1.0
                     for a, b in zip(sorted(rows), sorted(rows)[1:])))
    result.check("flops scale linearly with batch",
                 abs(rows[256]["gflops"] / rows[1]["gflops"] - 256) < 26)
    result.artifact = table.render()
    return result
