"""Table X — the 10 MXNet models vs their TensorFlow counterparts.

Paper: MXNet ResNets are 1.3-1.8x slower online but match TF throughput
at the optimal batch (0.90-1.03x); MXNet MobileNets reach 1.35-1.76x the
TF throughput because the Eigen path's excessive DRAM accesses cap TF's
memory-bound models.

Known deviation (documented in EXPERIMENTS.md): our MXNet MobileNet
*online* latency is ~1.3x TF rather than the paper's ~1.0x parity — we
model MXNet's per-layer dependency-engine cost synchronously while the
real engine hides it behind GPU work for cheap layers.
"""

from __future__ import annotations

from repro.analysis.tables import Column, Table
from repro.experiments import context
from repro.experiments.result import ExperimentResult
from repro.models import MXNET_ZOO, get_model

_BATCHES = (1, 64, 128, 256)


def run(model_ids: list[int] | None = None) -> ExperimentResult:
    ids = sorted(MXNET_ZOO) if model_ids is None else model_ids
    table = Table(
        title="Table X MXNet vs TensorFlow (Tesla_V100, normalized to TF)",
        columns=[
            Column("id", "ID", "d"),
            Column("name", "Name", align="<"),
            Column("online_ratio", "Norm. Online Latency", ".2f"),
            Column("tput_ratio", "Norm. Max Throughput", ".2f"),
            Column("paper_online", "Paper Online", ".2f"),
            Column("paper_tput", "Paper Tput", ".2f"),
        ],
    )
    ratios = {}
    for model_id in ids:
        tf_curve = context.curve(model_id, _BATCHES)
        mx_curve = context.curve(model_id, _BATCHES, framework="mxnet_like")
        online_ratio = (mx_curve.online_latency_ms
                        / tf_curve.online_latency_ms)
        tput_ratio = mx_curve.max_throughput / tf_curve.max_throughput
        ratios[model_id] = (online_ratio, tput_ratio)
        paper = MXNET_ZOO[model_id].paper
        table.add(id=model_id, name=MXNET_ZOO[model_id].name,
                  online_ratio=online_ratio, tput_ratio=tput_ratio,
                  paper_online=paper.normalized_online_latency,
                  paper_tput=paper.normalized_max_throughput)

    result = ExperimentResult(
        exp_id="Table X",
        title="Framework comparison: 10 MXNet models vs TensorFlow",
        paper={"resnet_tput_ratio": "0.90-1.03",
               "mobilenet_tput_ratio": "1.35-1.76",
               "resnet_online_ratio": "1.32-1.76"},
        measured={
            "resnet_tput_ratio": _band(ratios, ids, "ResNet", 1),
            "mobilenet_tput_ratio": _band(ratios, ids, "MobileNet", 1),
            "resnet_online_ratio": _band(ratios, ids, "ResNet", 0),
        },
    )
    resnets = [m for m in ids if "ResNet" in MXNET_ZOO[m].name]
    mobilenets = [m for m in ids if "MobileNet" in MXNET_ZOO[m].name]
    if resnets:
        result.check("MXNet ResNets slower online (ratio > 1.1)",
                     all(ratios[m][0] > 1.1 for m in resnets))
        result.check("MXNet ResNets match TF max throughput (0.85-1.15x)",
                     all(0.85 < ratios[m][1] < 1.15 for m in resnets))
    if mobilenets:
        result.check("MXNet MobileNets reach >1.2x TF max throughput "
                     "(paper 1.35-1.76x)",
                     all(ratios[m][1] > 1.2 for m in mobilenets))
        result.check("MobileNet advantage exceeds ResNet parity",
                     min(ratios[m][1] for m in mobilenets)
                     > max(ratios[m][1] for m in resnets) if resnets else True)
    result.artifact = table.render()
    return result


def _band(ratios, ids, family: str, idx: int) -> str:
    family_ids = [m for m in ids if family in MXNET_ZOO[m].name]
    if not family_ids:
        return "n/a"
    values = [ratios[m][idx] for m in family_ids]
    return f"{min(values):.2f}-{max(values):.2f}"
