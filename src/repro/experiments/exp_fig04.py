"""Figure 4 — layer statistics: A5 type distribution, A6 latency by type,
A7 memory by type (ResNet50, batch 256).

Paper: Conv2D/Mul/Add each ~22.7% of layer count; Conv2D dominates
latency at ~58.6%; the Conv->BN->Relu modules execute as
Conv2D -> Mul -> Add -> Relu.
"""

from __future__ import annotations

from repro.analysis import latency_by_type, layer_type_distribution, memory_by_type
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    dist = layer_type_distribution(profile)
    lat = latency_by_type(profile)
    mem = memory_by_type(profile)

    dist_pct = {r["layer_type"]: r["percentage"] for r in dist}
    lat_pct = {r["layer_type"]: r["percentage"] for r in lat}

    result = ExperimentResult(
        exp_id="Figure 4",
        title="A5/A6/A7 layer statistics for ResNet50 (batch 256)",
        paper={"conv_count_pct": 22.66, "mul_count_pct": 22.66,
               "conv_latency_pct": 58.56, "relu_latency_pct": 9.71},
        measured={"conv_count_pct": dist_pct.get("Conv2D", 0.0),
                  "mul_count_pct": dist_pct.get("Mul", 0.0),
                  "conv_latency_pct": lat_pct.get("Conv2D", 0.0),
                  "relu_latency_pct": lat_pct.get("Relu", 0.0)},
    )
    result.check("Conv2D/Mul/Add each ~22-24% of layers",
                 all(20 < dist_pct.get(t, 0) < 26
                     for t in ("Conv2D", "Mul", "Add")))
    result.check("Conv2D dominates latency at ~55-65%",
                 52 < lat_pct.get("Conv2D", 0) < 68,
                 f"{lat_pct.get('Conv2D', 0):.1f}%")
    result.check("Mul/Add/Relu each contribute ~7-13% of latency",
                 all(6 < lat_pct.get(t, 0) < 14
                     for t in ("Mul", "Add", "Relu")))
    result.check("the same layer group dominates memory allocation",
                 mem.rows[0]["layer_type"] in
                 ("Conv2D", "Mul", "Add", "Relu"))
    result.artifact = (
        dist.render(max_rows=6) + "\n\n" + lat.render(max_rows=6)
        + "\n\n" + mem.render(max_rows=6)
    )
    return result
