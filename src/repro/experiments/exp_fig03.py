"""Figure 3 — ResNet50 throughput across batch sizes on Tesla_V100.

Paper: throughput rises to a maximum of 930.7 inputs/s; the optimal batch
size rule selects 256; online (batch-1) latency is 6.22 ms.
"""

from __future__ import annotations

from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    curve = context.curve(context.RESNET50_ID,
                          (1, 2, 4, 8, 16, 32, 64, 128, 256, 512))
    result = ExperimentResult(
        exp_id="Figure 3",
        title="MLPerf_ResNet50_v1.5 throughput across batch sizes "
              "(Tesla_V100)",
        paper={"optimal_batch": 256, "max_throughput": 930.7,
               "online_ms": 6.22},
        measured={"optimal_batch": curve.optimal_batch,
                  "max_throughput": curve.max_throughput,
                  "online_ms": curve.online_latency_ms},
    )
    result.check(
        "optimal batch size is 128 or 256 (the paper reports 256, but its "
        "own Table VI latencies give a 3.9% gain from 128 to 256, which "
        "the stated 5% rule rejects; our curve matches Table VI)",
        curve.optimal_batch in (128, 256),
        f"{curve.optimal_batch}",
    )
    result.check("max throughput within 25% of paper (930.7/s)",
                 0.75 * 930.7 < curve.max_throughput < 1.25 * 930.7,
                 f"{curve.max_throughput:.1f}/s")
    result.check("online latency within 35% of paper (6.22 ms)",
                 0.65 * 6.22 < curve.online_latency_ms < 1.35 * 6.22,
                 f"{curve.online_latency_ms:.2f} ms")
    tput = curve.throughputs
    monotone = all(
        tput[a] <= tput[b] * 1.02
        for a, b in zip(sorted(tput), sorted(tput)[1:])
    )
    result.check("throughput saturates monotonically", monotone)
    rows = [f"  {'batch':>6} {'latency (ms)':>14} {'inputs/s':>10}"]
    for batch in sorted(curve.latencies_ms):
        rows.append(
            f"  {batch:>6} {curve.latencies_ms[batch]:>14.2f} "
            f"{tput[batch]:>10.1f}"
        )
    result.artifact = "\n".join(rows)
    return result
