"""Figure 6 — A9 GPU kernel roofline (ResNet50, batch 256).

Paper: the most time-consuming kernels are convolution kernels, all
compute-bound; the Eigen element-wise kernels sit deep in the
memory-bound region.
"""

from __future__ import annotations

from repro.analysis import bound_counts, kernel_roofline, top_kernels
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    counts = bound_counts(profile)
    points = kernel_roofline(profile)
    top = top_kernels(profile, 5)

    result = ExperimentResult(
        exp_id="Figure 6",
        title="A9 kernel roofline (ResNet50, batch 256, Tesla_V100)",
        paper={"top_kernels_compute_bound": True,
               "ideal_ai": 17.44},
        measured={"compute_bound": counts["compute-bound"],
                  "memory_bound": counts["memory-bound"],
                  "ideal_ai": profile.gpu.ideal_arithmetic_intensity},
    )
    result.check("both regions populated",
                 counts["compute-bound"] > 0 and counts["memory-bound"] > 0)
    result.check("top-5 kernels are all compute-bound conv kernels",
                 all(not r["memory_bound"] for r in top))
    eigen_points = [p for p in points if "Eigen" in p.label]
    result.check("Eigen kernels are memory-bound",
                 all(p.memory_bound(profile.gpu) for p in eigen_points))
    result.check("kernel AIs span >3 orders of magnitude",
                 max(p.arithmetic_intensity for p in points)
                 > 1000 * min(p.arithmetic_intensity for p in points))
    result.artifact = top.render()
    return result
