"""Table VII — the five evaluation systems."""

from __future__ import annotations

from repro.analysis.tables import Column, Table
from repro.experiments.result import ExperimentResult
from repro.sim import SYSTEMS

_PAPER_AI = {"Quadro_RTX": 26.12, "Tesla_V100": 17.44, "Tesla_P100": 12.70,
             "Tesla_P4": 28.34, "Tesla_M60": 30.12}


def run() -> ExperimentResult:
    table = Table(
        title="Table VII evaluation systems",
        columns=[
            Column("name", "Name", align="<"),
            Column("gpu", "GPU", align="<"),
            Column("arch", "Architecture", align="<"),
            Column("tflops", "Theoretical FLOPS (TFLOPS)", ".1f"),
            Column("bw", "Memory Bandwidth (GB/s)", ".0f"),
            Column("ai", "Ideal Arithmetic Intensity", ".2f"),
        ],
    )
    deviations = {}
    for name, spec in SYSTEMS.items():
        table.add(name=name, gpu=spec.gpu,
                  arch=spec.architecture.value.title(),
                  tflops=spec.peak_tflops, bw=spec.memory_bandwidth_gbps,
                  ai=spec.ideal_arithmetic_intensity)
        deviations[name] = abs(
            spec.ideal_arithmetic_intensity - _PAPER_AI[name]
        ) / _PAPER_AI[name]

    result = ExperimentResult(
        exp_id="Table VII",
        title="Five systems spanning Turing/Volta/Pascal/Maxwell",
        paper={"systems": 5, "ideal_ai_v100": 17.44},
        measured={"systems": len(SYSTEMS),
                  "ideal_ai_v100":
                  SYSTEMS["Tesla_V100"].ideal_arithmetic_intensity},
    )
    result.check("all five systems present", len(SYSTEMS) == 5)
    result.check("ideal arithmetic intensities match Table VII within 2%",
                 all(d < 0.02 for d in deviations.values()),
                 ", ".join(f"{n}:{100 * d:.1f}%"
                           for n, d in deviations.items()))
    archs = [s.architecture.value for s in SYSTEMS.values()]
    result.check("four GPU generations covered",
                 {"turing", "volta", "pascal", "maxwell"} == set(archs))
    result.artifact = table.render()
    return result
