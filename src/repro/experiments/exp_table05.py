"""Table V — GPU kernel information aggregated by layer (A11).

Paper: the top-5 layers' kernel latencies nearly equal their layer
latencies (GPU-dominated); occupancy is the latency-weighted mean of the
layers' kernels; all five are compute-bound.
"""

from __future__ import annotations

from repro.analysis import top_layers_by_kernels
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    top = top_layers_by_kernels(profile, 5)

    result = ExperimentResult(
        exp_id="Table V",
        title="A11 kernel aggregates for the top-5 layers "
              "(ResNet50, batch 256)",
        paper={"kernel_share_of_layer": ">95%", "all_compute_bound": True},
        measured={"kernel_share_of_layer": "%.1f%%" % (
            100 * sum(r["kernel_latency_ms"] for r in top)
            / sum(r["latency_ms"] for r in top)
        )},
    )
    result.check("kernel latency accounts for >90% of each top layer",
                 all(r["kernel_latency_ms"] > 0.9 * r["latency_ms"]
                     for r in top))
    result.check("all top-5 layers compute-bound",
                 all(not r["memory_bound"] for r in top))
    result.check("occupancy is a valid weighted mean (0-100%)",
                 all(0 < r["occupancy_pct"] < 100 for r in top))
    result.check("layer flops/dram equal the sums of their kernels'",
                 _sums_consistent(profile))
    result.artifact = top.render()
    return result


def _sums_consistent(profile) -> bool:
    for layer in profile.layers:
        if not layer.kernels:
            continue
        if abs(layer.flops - sum(k.flops for k in layer.kernels)) > 1e-6:
            return False
        if abs(layer.dram_read_bytes
               - sum(k.dram_read_bytes for k in layer.kernels)) > 1e-6:
            return False
    return True
