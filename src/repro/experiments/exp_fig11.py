"""Figure 11 — ResNet50 throughput and GPU latency across the five
systems and batch sizes (Sec. IV-C).

Paper: V100 leads; Quadro RTX has higher peak FLOPS but lower bandwidth
and "straggles on memory-bound layers", performing slightly worse;
performance scales differently across systems; the kernels invoked are
system-dependent.
"""

from __future__ import annotations

from repro.experiments import context
from repro.experiments.result import ExperimentResult

_BATCHES = (1, 4, 16, 64, 256)


def run() -> ExperimentResult:
    curves = {
        system: context.curve(context.RESNET50_ID, _BATCHES, system=system)
        for system in context.SYSTEMS
    }
    tput256 = {s: c.throughputs[256] for s, c in curves.items()}
    ranking = sorted(tput256, key=tput256.get, reverse=True)

    result = ExperimentResult(
        exp_id="Figure 11",
        title="ResNet50 throughput/latency across 5 systems x batch sizes",
        paper={"winner": "Tesla_V100", "runner_up": "Quadro_RTX",
               "slowest": "Tesla_M60"},
        measured={"ranking": ranking},
    )
    result.check("Tesla_V100 wins at batch 256", ranking[0] == "Tesla_V100")
    result.check("Quadro_RTX second despite higher peak FLOPS "
                 "(memory-bound layers straggle)",
                 ranking[1] == "Quadro_RTX")
    result.check("Tesla_M60 slowest", ranking[-1] == "Tesla_M60")
    scaling = {
        s: c.throughputs[256] / c.throughputs[1] for s, c in curves.items()
    }
    result.check("scaling with batch differs across systems (>1.5x spread)",
                 max(scaling.values()) > 1.5 * min(scaling.values()))
    rows = [f"  {'system':<12}" + "".join(f"{b:>10}" for b in _BATCHES)]
    for system, curve in curves.items():
        tput = curve.throughputs
        rows.append(
            f"  {system:<12}" + "".join(f"{tput[b]:>10.1f}" for b in _BATCHES)
        )
    result.artifact = "\n".join(rows)
    return result
