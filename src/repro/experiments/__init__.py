"""Paper-experiment reproduction suite.

One module per table/figure of the paper's evaluation.  Each exposes a
``run()`` returning an :class:`repro.experiments.result.ExperimentResult`
with paper-vs-measured values, qualitative agreement checks, and a
rendered artifact.  ``EXPERIMENTS`` maps experiment ids to their runners;
:func:`run_all` drives the whole suite (used by the EXPERIMENTS.md
generator and the benchmark harness).
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    exp_fig02,
    exp_fig03,
    exp_fig04,
    exp_fig05,
    exp_fig06,
    exp_fig07,
    exp_fig08,
    exp_fig09,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_table01,
    exp_table02,
    exp_table03,
    exp_table04,
    exp_table05,
    exp_table06,
    exp_table07,
    exp_table08,
    exp_table09,
    exp_table10,
)
from repro.experiments.result import Check, ExperimentResult

#: Registry in paper order.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table01": exp_table01.run,
    "fig02": exp_fig02.run,
    "fig03": exp_fig03.run,
    "fig04": exp_fig04.run,
    "fig05": exp_fig05.run,
    "fig06": exp_fig06.run,
    "fig07": exp_fig07.run,
    "fig08": exp_fig08.run,
    "fig09": exp_fig09.run,
    "fig10": exp_fig10.run,
    "table02": exp_table02.run,
    "table03": exp_table03.run,
    "table04": exp_table04.run,
    "table05": exp_table05.run,
    "table06": exp_table06.run,
    "table07": exp_table07.run,
    "table08": exp_table08.run,
    "table09": exp_table09.run,
    "fig11": exp_fig11.run,
    "fig12": exp_fig12.run,
    "table10": exp_table10.run,
}


def run_all(ids: list[str] | None = None) -> dict[str, ExperimentResult]:
    """Run the requested experiments (all by default), in paper order."""
    selected = list(EXPERIMENTS) if ids is None else ids
    results: dict[str, ExperimentResult] = {}
    for exp_id in selected:
        if exp_id not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {exp_id!r}; valid: {sorted(EXPERIMENTS)}"
            )
        results[exp_id] = EXPERIMENTS[exp_id]()
    return results


__all__ = ["Check", "EXPERIMENTS", "ExperimentResult", "run_all"]
