"""Table IV — GPU kernels aggregated by name (A10).

Paper: volta_scudnn_128x64_relu_interior_nn_v1 leads with 30.9% of model
latency; Eigen scalar_product/scalar_sum ops follow at ~10% each,
memory-bound at ~0.25 flops/byte; scalar_max (ReLU) runs at 98.4%
occupancy with 0 flops; 30 unique kernels.
"""

from __future__ import annotations

from repro.analysis import kernel_by_name_table
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    table = kernel_by_name_table(profile)
    leader = table.rows[0]
    by_name = {r["name"]: r for r in table}

    result = ExperimentResult(
        exp_id="Table IV",
        title="A10 kernels aggregated by name (ResNet50, batch 256)",
        paper={"leader": "volta_scudnn_128x64_relu_interior_nn_v1",
               "leader_pct": 30.87, "unique_kernels": 30,
               "eigen_ai": 0.26, "relu_occupancy_pct": 98.39},
        measured={"leader": leader["name"],
                  "leader_pct": leader["latency_pct"],
                  "unique_kernels": len(table)},
    )
    result.check("scudnn 128x64 is the top kernel by aggregate latency",
                 "scudnn_128x64" in leader["name"])
    result.check("leader takes a dominant share of model latency "
                 "(paper 30.9%; ours is higher as more convs dispatch "
                 "to the 128x64 tile)",
                 20 < leader["latency_pct"] < 55,
                 f"{leader['latency_pct']:.1f}%")
    product = next((r for r in table if "scalar_product_op" in r["name"]), None)
    result.check("Eigen product kernels memory-bound near 0.25 flops/byte",
                 product is not None and product["memory_bound"]
                 and 0.1 < product["arithmetic_intensity"] < 0.6,
                 f"{product['arithmetic_intensity']:.2f}" if product else "missing")
    relu = next((r for r in table if "scalar_max_op" in r["name"]), None)
    result.check("ReLU kernel: 0 flops at ~98% occupancy",
                 relu is not None and relu["gflops"] == 0.0
                 and relu["occupancy_pct"] > 90,
                 f"occ {relu['occupancy_pct']:.1f}%" if relu else "missing")
    result.check("tens of unique kernel names (paper: 30; our kernel "
                 "emission is slightly coarser)",
                 12 <= len(table) <= 40, f"{len(table)}")
    result.artifact = table.head(8).render()
    return result
