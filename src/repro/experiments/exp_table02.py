"""Table II — top-5 most time-consuming layers (A2) for ResNet50.

Paper: conv2d_48/Conv2D and conv2d_51/Conv2D lead (~7.6 ms each at
<256, 512, 7, 7> with 25.7 MB allocations); the first conv allocates
822.1 MB; 234 layers total of which 143 take less than 1 ms.
"""

from __future__ import annotations

from repro.analysis import top_layers
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    top = top_layers(profile, 5)
    names = [r["name"] for r in top]
    sub_ms = sum(1 for l in profile.layers if l.latency_ms < 1.0)

    result = ExperimentResult(
        exp_id="Table II",
        title="A2 top-5 most time-consuming layers (ResNet50, batch 256)",
        paper={"leaders": "conv2d_48, conv2d_51", "n_layers": 234,
               "sub_ms_layers": 143, "leader_alloc_mb": 25.7,
               "first_conv_alloc_mb": 822.1},
        measured={"leaders": ", ".join(n.split("/")[0] for n in names[:2]),
                  "n_layers": len(profile.layers),
                  "sub_ms_layers": sub_ms,
                  "leader_alloc_mb": top.rows[0]["alloc_mb"]},
    )
    result.check("the paper's top-3 layers (conv2d_48/51/45) are our top-3 "
                 "(ordering within the trio differs by ~1%)",
                 {"conv2d_45/Conv2D", "conv2d_48/Conv2D",
                  "conv2d_51/Conv2D"} == set(names[:3]))
    result.check("all top-5 layers are Conv2D",
                 all(r["layer_type"] == "Conv2D" for r in top))
    result.check("~234 executed layers", 225 <= len(profile.layers) <= 240,
                 f"{len(profile.layers)}")
    result.check("most layers take <1 ms (paper: 143 of 234)",
                 sub_ms > len(profile.layers) / 2, f"{sub_ms}")
    result.check("leader allocates exactly its 256x512x7x7 output (25.7 MB)",
                 abs(top.rows[0]["alloc_mb"] - 25.7) < 0.3)
    first_conv = next(l for l in profile.layers if l.name == "conv2d/Conv2D")
    result.check("first conv allocates 822.1 MB",
                 abs(first_conv.alloc_mb - 822.1) < 1.0,
                 f"{first_conv.alloc_mb:.1f} MB")
    result.artifact = top.render()
    return result
