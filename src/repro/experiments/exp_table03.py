"""Table III — top-5 most time-consuming GPU kernel calls (A8).

Paper: two volta_cgemm_32x32_tn calls (layers 208/221) and three scudnn
calls lead; all compute-bound; the layer-3 scudnn kernel has AI ~204
while the cgemm calls reach AI ~850.
"""

from __future__ import annotations

from repro.analysis import top_kernels
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    top = top_kernels(profile, 5)
    names = [r["name"] for r in top]

    result = ExperimentResult(
        exp_id="Table III",
        title="A8 top-5 GPU kernel calls (ResNet50, batch 256)",
        paper={"total_kernels": 375, "top_classes": "cgemm + scudnn",
               "all_compute_bound": True},
        measured={"total_kernels": len(profile.kernels),
                  "top_classes": ", ".join(sorted(
                      {"cgemm" if "cgemm" in n else "scudnn" for n in names}
                  ))},
    )
    result.check("top kernels are cgemm/scudnn convolution kernels",
                 all("cgemm" in n or "scudnn" in n for n in names))
    result.check("a cgemm kernel appears near the top",
                 any("cgemm" in n for n in names))
    result.check("all top-5 kernels are compute-bound",
                 all(not r["memory_bound"] for r in top))
    result.check("hundreds of kernel invocations (paper: 375)",
                 200 <= len(profile.kernels) <= 500,
                 f"{len(profile.kernels)}")
    result.check("every top kernel is correlated to a layer",
                 all(r["layer_index"] > 0 for r in top))
    cgemm = [r for r in top if "cgemm" in r["name"]]
    if cgemm:
        result.check("cgemm arithmetic intensity is very high (paper ~850)",
                     cgemm[0]["arithmetic_intensity"] > 200,
                     f"{cgemm[0]['arithmetic_intensity']:.0f}")
    result.artifact = top.render()
    return result
