"""Figure 9 — A14 layer roofline (ResNet50, batch 256).

Paper: "The Conv2D, MatMul, BiasAdd, and Softmax layers are
compute-bound, whereas the other layers (Add, Mul, and Relu) are
memory-bound"; Conv2D layers are the most compute and memory intensive.
"""

from __future__ import annotations

from repro.analysis import bound_by_layer_type, layer_roofline
from repro.experiments import context
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    profile = context.model_profile(context.RESNET50_ID, 256)
    bounds = bound_by_layer_type(profile)
    points = layer_roofline(profile)

    result = ExperimentResult(
        exp_id="Figure 9",
        title="A14 layer roofline (ResNet50, batch 256, Tesla_V100)",
        paper={"Conv2D": "compute-bound", "MatMul": "compute-bound",
               "Add": "memory-bound", "Mul": "memory-bound",
               "Relu": "memory-bound"},
        measured={k: v for k, v in sorted(bounds.items())
                  if k in ("Conv2D", "MatMul", "Add", "Mul", "Relu",
                           "AddN", "Softmax")},
    )
    result.check("Conv2D layers compute-bound",
                 bounds.get("Conv2D") == "compute-bound")
    result.check("MatMul compute-bound", bounds.get("MatMul") == "compute-bound")
    for t in ("Add", "Mul", "Relu"):
        result.check(f"{t} layers memory-bound",
                     bounds.get(t) == "memory-bound")
    conv_points = [p for p in points if "Conv2D" in p.label]
    other = [p for p in points if "Conv2D" not in p.label]
    result.check(
        "Conv2D layers reach the highest arithmetic throughput",
        max(p.arithmetic_throughput_tflops for p in conv_points)
        > max(p.arithmetic_throughput_tflops for p in other),
    )
    result.artifact = "  " + ", ".join(
        f"{k}={v}" for k, v in sorted(bounds.items())
    )
    return result
