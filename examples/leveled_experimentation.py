#!/usr/bin/env python
"""Leveled experimentation and profiling-overhead accounting (Fig. 2).

Profiles ResNet50 at each rung of the M -> M/L -> M/L/G ladder plus a
metric-collection run, and prints the per-level overhead the leveled
methodology isolates — including the kernel-replay blow-up that DRAM
metrics cause (the paper's ">100x" warning).

    python examples/leveled_experimentation.py [batch_size]
"""

import sys

from repro import LeveledExperiment, XSPSession
from repro.models import get_model


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    session = XSPSession("Tesla_V100", "tensorflow_like")
    experiment = LeveledExperiment(session, runs_per_level=3)
    graph = get_model("MLPerf_ResNet50_v1.5").graph

    print(f"leveled experimentation: {graph.name} at batch {batch}")
    leveled = experiment.run(graph, batch)

    print(f"\n{'level set':>16} {'predict latency':>18}")
    for label in ("M", "M/L", "M/L/G", "M/L/G+metrics"):
        latency = leveled.predict_latency_at(label)
        print(f"{label:>16} {latency:>15.2f} ms")

    print("\nper-level profiling overhead (pairwise subtraction):")
    for label, overhead in leveled.overhead_ladder().items():
        print(f"  enabling {label:>6}: +{overhead:.2f} ms")

    metrics_cost = (leveled.predict_latency_at("M/L/G+metrics")
                    / leveled.model_latency_ms)
    print(f"\naccurate model latency (from M runs): "
          f"{leveled.model_latency_ms:.2f} ms")
    print(f"DRAM-metric collection slows the run {metrics_cost:.0f}x "
          f"(kernel replay; reported kernel durations stay clean)")


if __name__ == "__main__":
    main()
