#!/usr/bin/env python
"""Framework comparison: TensorFlow-like vs MXNet-like (paper Sec. IV-B).

Reproduces the Table X methodology on two representative models — a
compute-bound ResNet and a memory-bound MobileNet — and prints the
normalized online latency and maximum throughput, plus the kernel-level
explanation (Eigen vs mshadow element-wise kernels, depthwise conv
implementations) that XSP's across-stack correlation surfaces.

    python examples/compare_frameworks.py
"""

from collections import defaultdict

from repro import AnalysisPipeline, XSPSession
from repro.models import get_model
from repro.workloads import throughput_curve

MODELS = ["ResNet_v1_50", "MobileNet_v1_1.0_224"]
BATCHES = [1, 64, 128, 256]


def main() -> None:
    sessions = {
        "TensorFlow": XSPSession("Tesla_V100", "tensorflow_like"),
        "MXNet": XSPSession("Tesla_V100", "mxnet_like"),
    }

    for model_name in MODELS:
        entry = get_model(model_name)
        print(f"=== {model_name} on Tesla_V100 ===")
        curves = {
            fw: throughput_curve(s, entry.graph, BATCHES, runs=2)
            for fw, s in sessions.items()
        }
        tf, mx = curves["TensorFlow"], curves["MXNet"]
        print(f"  online latency : TF {tf.online_latency_ms:7.2f} ms | "
              f"MX {mx.online_latency_ms:7.2f} ms | "
              f"ratio {mx.online_latency_ms / tf.online_latency_ms:.2f}")
        print(f"  max throughput : TF {tf.max_throughput:8.1f}/s | "
              f"MX {mx.max_throughput:8.1f}/s | "
              f"ratio {mx.max_throughput / tf.max_throughput:.2f}")

        # Kernel-level root cause via the across-stack profile.
        for fw, session in sessions.items():
            profile = AnalysisPipeline(session, runs_per_level=1) \
                .profile_model(entry.graph, 128)
            by_library = defaultdict(float)
            for kernel in profile.kernels:
                if "Eigen" in kernel.name:
                    by_library["eigen"] += kernel.latency_ms
                elif "mxnet" in kernel.name:
                    by_library["mshadow"] += kernel.latency_ms
                elif "Depthwise" in kernel.name or "depthwise" in kernel.name:
                    by_library["depthwise"] += kernel.latency_ms
                else:
                    by_library["cudnn/cublas"] += kernel.latency_ms
            parts = ", ".join(f"{k}: {v:.1f} ms"
                              for k, v in sorted(by_library.items()))
            print(f"  {fw:>10} kernel time by library @bs128: {parts}")
        print()


if __name__ == "__main__":
    main()
