#!/usr/bin/env python
"""Walkthrough: automated across-stack bottleneck insights.

XSP's across-stack profile exists so you don't have to eyeball 15 tables
to find the bottleneck.  This example drives the insight engine three
ways on MLPerf ResNet50 v1.5:

1. the one-call pipeline hook (`AnalysisPipeline.advise`) — profile,
   trace, batch sweep and rule evaluation in one go,
2. evidence drill-down — every insight's claims resolve back to span
   ids / layer indices / kernel names in the source capture,
3. campaign aggregation — the same rules over a (model x batch) grid,
   rolled up into systemic findings ("kernel X dominates in N/M
   configs").

Equivalent CLI: ``python -m repro advise --model 7 --batch 64 [--json]``.

    python examples/advise.py [batch_size]
"""

import sys

from repro import AnalysisPipeline, XSPSession
from repro.campaign import Campaign
from repro.models import get_model


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    entry = get_model("MLPerf_ResNet50_v1.5")
    session = XSPSession(system="Tesla_V100", framework="tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=1)

    # 1. One call: cache-aware profile + raw trace + M-only batch sweep,
    #    then every registered rule, ranked by severity.
    print(f"advising on {entry.name} at batch {batch} ...")
    report = pipeline.advise(
        entry.graph, batch, sweep_batches=[1, 8, 32, 64, 128, 256]
    )
    print()
    print(report.render(min_severity=0.2))

    # 2. Machine-checkable evidence: the top insight's references resolve
    #    against the profile/trace they came from.
    top = report.insights[0]
    print()
    print(f"top insight: {top.title!r} via rule {top.rule!r}")
    for ev in top.evidence[:3]:
        print(f"  evidence[{ev.kind}]: {ev.summary}")
        print(f"    measured={dict(ev.measured)}")

    # 3. Campaign-wide aggregation: systemic patterns across a grid.
    print()
    print("running a small campaign grid for systemic findings ...")
    result = (
        Campaign(runs_per_level=1)
        .add_grid([7, 11], [1, 32], systems=("Tesla_V100",))
        .run()
    )
    print(result.insights().render())


if __name__ == "__main__":
    main()
