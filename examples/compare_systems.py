#!/usr/bin/env python
"""System comparison: one model across the five Table VII GPUs (Sec. IV-C).

Shows the Fig. 11 shape — throughput/latency scaling across batch sizes
differs per system — and the kernel-name divergence across GPU
generations (volta_scudnn_* vs maxwell_scudnn_*) that XSP's kernel-level
profile exposes.

    python examples/compare_systems.py [model_name_or_id]
"""

import sys

from repro import AnalysisPipeline, XSPSession
from repro.models import get_model
from repro.sim import SYSTEMS
from repro.workloads import throughput_curve

BATCHES = [1, 8, 64, 256]


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "MLPerf_ResNet50_v1.5"
    entry = get_model(int(key) if key.isdigit() else key)
    print(f"=== {entry.name} across systems ===")
    header = f"{'system':<12}" + "".join(f"{b:>10}" for b in BATCHES)
    print(header + "   (inputs/s per batch size)")

    for system in SYSTEMS:
        session = XSPSession(system, "tensorflow_like")
        curve = throughput_curve(session, entry.graph, BATCHES, runs=2)
        tput = curve.throughputs
        row = f"{system:<12}" + "".join(
            f"{tput.get(b, float('nan')):>10.1f}" for b in BATCHES
        )
        print(row)

    print()
    print("convolution kernels dispatched per architecture (batch 256):")
    for system in ("Tesla_V100", "Tesla_P100"):
        profile = AnalysisPipeline(
            XSPSession(system, "tensorflow_like"), runs_per_level=1
        ).profile_model(entry.graph, 256)
        conv_kernels = sorted({
            k.name for k in profile.kernels
            if "scudnn" in k.name or "cgemm" in k.name
            or "convolve" in k.name
        })
        print(f"  {system}:")
        for name in conv_kernels:
            print(f"    {name}")


if __name__ == "__main__":
    main()
