#!/usr/bin/env python
"""Profile a custom, user-defined model — no vendor framework required.

The paper stresses that XSP works for "ML models developed or deployed
using customized or non-vendor supported frameworks".  This example
builds a custom CNN with the ModelBuilder API, profiles it across the
stack, prints the per-layer kernel correlation (the analysis no existing
tool could produce), and exports the timeline as a Chrome trace.

    python examples/custom_model_profiling.py [output.json]
"""

import sys

from repro import AnalysisPipeline, ProfilingConfig, XSPSession
from repro.analysis import kernel_by_layer_table, top_layers
from repro.models import ModelBuilder


def build_custom_model():
    """A custom residual CNN with a squeeze-and-excite-style block."""
    b = ModelBuilder("CustomSENet")
    x = b.input(3, 64, 64)
    x = b.conv_bn_relu(x, 32, 3, strides=2)
    for filters in (32, 64):
        shortcut = x if filters == 32 else b.conv_bn(x, filters, 1, strides=2)
        y = b.conv_bn_relu(x, filters, 3, strides=1 if filters == 32 else 2)
        y = b.conv_bn(y, filters, 3)
        # squeeze-and-excite: GAP -> dense -> sigmoid -> channel scale
        squeeze = b.global_avg_pool(y)
        x = b.relu(b.add([shortcut, y]))
        del squeeze  # gate omitted: broadcast-mul over spatial dims
    x = b.classifier(x, classes=100)
    return b.build()


def main() -> None:
    graph = build_custom_model()
    session = XSPSession("Tesla_V100", "tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=2)

    profile = pipeline.profile_model(graph, batch=32)
    print(f"{graph.name}: {len(profile.layers)} executed layers, "
          f"{len(profile.kernels)} GPU kernels, "
          f"{profile.model_latency_ms:.2f} ms at batch 32")
    print()
    print(top_layers(profile, 5).render())
    print()
    print(kernel_by_layer_table(profile).head(5).render())

    # Export the raw across-stack timeline for chrome://tracing.
    run = session.profile(graph, 32, ProfilingConfig())
    output = sys.argv[1] if len(sys.argv) > 1 else "custom_model_trace.json"
    with open(output, "w") as fh:
        fh.write(run.trace.to_chrome_trace())
    print(f"\nwrote Chrome trace with {len(run.trace)} spans to {output}")


if __name__ == "__main__":
    main()
