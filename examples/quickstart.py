#!/usr/bin/env python
"""Quickstart: across-stack profile of MLPerf ResNet50 v1.5 on a Tesla V100.

Runs the full XSP pipeline — model-, layer- and GPU-kernel-level tracers,
leveled experimentation, trimmed-mean merging — and prints the complete
15-analysis report, exactly the characterization walked through in
Sec. III-D of the paper.

    python examples/quickstart.py [batch_size]

Set ``XSP_PROFILE_CACHE=/some/dir`` to persist merged profiles on disk:
a repeat invocation is then served entirely from the warm cache and skips
the leveled-experiment ladder.  Set ``XSP_PARALLEL_SWEEP=1`` to fan the
batch sweep out over worker processes.

Next step: ``python -m repro advise --model 7 --batch 256`` (or
``examples/advise.py``) turns this profile into ranked, evidence-backed
bottleneck insights via the rule engine in :mod:`repro.insights`.
"""

import os
import sys

from repro import AnalysisPipeline, XSPSession
from repro.analysis.report import full_report
from repro.core import ProfileStore
from repro.models import get_model


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    entry = get_model("MLPerf_ResNet50_v1.5")

    cache_dir = os.environ.get("XSP_PROFILE_CACHE")
    store = ProfileStore(cache_dir) if cache_dir else None
    parallel = bool(os.environ.get("XSP_PARALLEL_SWEEP"))

    session = XSPSession(system="Tesla_V100", framework="tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=3, store=store)

    print(f"profiling {entry.name} at batch {batch} on Tesla_V100 ...")
    profile = pipeline.profile_model(entry.graph, batch)
    sweep = pipeline.sweep(entry.graph, [1, 8, 32, batch], parallel=parallel)

    print()
    print(full_report(profile, sweep))


if __name__ == "__main__":
    main()
