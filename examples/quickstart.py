#!/usr/bin/env python
"""Quickstart: across-stack profile of MLPerf ResNet50 v1.5 on a Tesla V100.

Runs the full XSP pipeline — model-, layer- and GPU-kernel-level tracers,
leveled experimentation, trimmed-mean merging — and prints the complete
15-analysis report, exactly the characterization walked through in
Sec. III-D of the paper.

    python examples/quickstart.py [batch_size]
"""

import sys

from repro import AnalysisPipeline, XSPSession
from repro.analysis.report import full_report
from repro.models import get_model


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    entry = get_model("MLPerf_ResNet50_v1.5")

    session = XSPSession(system="Tesla_V100", framework="tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=3)

    print(f"profiling {entry.name} at batch {batch} on Tesla_V100 ...")
    profile = pipeline.profile_model(entry.graph, batch)
    sweep = pipeline.sweep(entry.graph, [1, 8, 32, batch])

    print()
    print(full_report(profile, sweep))


if __name__ == "__main__":
    main()
