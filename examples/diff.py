#!/usr/bin/env python
"""Walkthrough: across-stack differential analysis (`repro diff`).

XSP's comparisons are the paper's payoff: the same model profiled twice
— under another framework, system, or batch — and an explanation of
*why* one side wins.  This example drives the diff engine three ways on
MLPerf ResNet50 v1.5:

1. profile-vs-profile — ``diff_profiles`` aligns the layers, measures
   per-layer / per-kernel deltas, and classifies ranked findings
   (regression / improvement / new-hotspot / kernel-mix-shift),
2. evidence drill-down — every finding carries per-side evidence that
   resolves against the profile it was measured on,
3. grid-vs-grid — ``CampaignResult.diff`` matches two campaign grids on
   their shared coordinates (the varying axis is detected
   automatically) and summarizes the speedup distribution plus any OOM
   set differences.

Equivalent CLI::

    python -m repro diff model=7,batch=64 model=7,batch=64,framework=mxnet_like
    python -m repro diff baseline.json candidate.json --max-regression 0.10

Usage: ``python examples/diff.py [batch_size]``
"""

import sys

from repro import AnalysisPipeline, XSPSession
from repro.analysis.diff import diff_profiles
from repro.campaign import Campaign
from repro.models import get_model


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    entry = get_model("MLPerf_ResNet50_v1.5")

    # 1. The same model under two frameworks, diffed.
    profiles = {}
    for framework in ("tensorflow_like", "mxnet_like"):
        print(f"profiling {entry.name} (batch {batch}) on {framework} ...")
        session = XSPSession(system="Tesla_V100", framework=framework)
        pipeline = AnalysisPipeline(session, runs_per_level=1)
        profiles[framework] = pipeline.profile_model(entry.graph, batch)
    diff = diff_profiles(
        profiles["tensorflow_like"], profiles["mxnet_like"]
    )
    print()
    print(diff.render(min_severity=0.0, max_layers=5))

    # 2. Per-side evidence: claims resolve against the profile they were
    #    measured on (baseline indices into TF, candidate into MXNet).
    top = diff.findings[0]
    print()
    print(f"top finding: {top.title!r} ({top.kind}, "
          f"severity {top.severity:.2f})")
    for side, evidence in (("baseline", top.baseline_evidence),
                           ("candidate", top.candidate_evidence)):
        for ev in evidence[:2]:
            print(f"  {side} evidence[{ev.kind}]: {ev.summary}")

    # 3. Grid-vs-grid A/B: one grid per framework, matched point-wise.
    print()
    print("running the same (model x batch) grid under both frameworks ...")
    grids = {
        fw: Campaign(runs_per_level=1)
        .add_grid([7, 11], [1, 32], frameworks=(fw,))
        .run()
        for fw in ("tensorflow_like", "mxnet_like")
    }
    campaign_diff = grids["tensorflow_like"].diff(grids["mxnet_like"])
    print()
    print(campaign_diff.render())


if __name__ == "__main__":
    main()
